"""Unit tests for the command-line interface."""

import csv
import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ysb" in out and "Klink" in out

    def test_run_requires_known_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "EDF"])

    def test_run_requires_known_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "tpch"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "ysb"
        assert args.scheduler == "Klink"
        assert args.queries == 60


class TestRunCommand:
    def test_small_run_prints_table(self, capsys):
        rc = main([
            "run", "--workload", "ysb", "--scheduler", "Default",
            "--queries", "2", "--duration", "25", "--cores", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Default" in out
        assert "ysb" in out

    def test_faults_and_invariants_flags(self, capsys):
        rc = main([
            "run", "--workload", "ysb", "--scheduler", "Default",
            "--queries", "2", "--duration", "20", "--cores", "4",
            "--faults", "5", "--check-invariants",
        ])
        assert rc == 0  # zero violations -> success exit
        out = capsys.readouterr().out
        assert "invariants OK" in out

    def test_faults_flag_defaults_off(self):
        args = build_parser().parse_args(["run"])
        assert args.faults is None
        assert args.check_invariants is False

    def test_negative_fault_seed_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--faults", "-1"])

    def test_violations_produce_failure_exit(self, capsys):
        from types import SimpleNamespace

        from repro.cli import _report_monitors
        from repro.faults import InvariantMonitor

        monitor = InvariantMonitor()
        monitor._record(0.0, "cpu-budget", "engine", "synthetic")
        res = SimpleNamespace(
            monitor=monitor,
            config=SimpleNamespace(scheduler="Klink", n_queries=2),
        )
        assert _report_monitors([res]) == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        path = str(tmp_path / "out.csv")
        main([
            "run", "--workload", "ysb", "--scheduler", "Default",
            "--queries", "2", "--duration", "25", "--cores", "4",
            "--csv", path,
        ])
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 1
        assert rows[0]["scheduler"] == "Default"
        assert float(rows[0]["throughput_eps"]) > 0


class TestSweepCommand:
    def test_sweep_runs_grid(self, capsys):
        rc = main([
            "sweep", "--workload", "ysb", "--queries", "1", "2",
            "--schedulers", "Default", "Klink",
            "--duration", "25", "--cores", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("Default") == 2
        assert out.count("Klink") == 2


class TestEstimateCommand:
    def test_klink_estimator(self, capsys):
        rc = main([
            "estimate", "--delay", "uniform", "--epochs", "60",
            "--repetitions", "1",
        ])
        assert rc == 0
        assert "accuracy" in capsys.readouterr().out

    def test_lr_estimator(self, capsys):
        rc = main([
            "estimate", "--estimator", "lr", "--delay", "zipf",
            "--epochs", "60", "--repetitions", "1",
        ])
        assert rc == 0
        assert "LR" in capsys.readouterr().out


class TestReportCommand:
    def _run_args(self, *extra):
        return [
            "report", "--workload", "ysb", "--scheduler", "Klink",
            "--queries", "2", "--duration", "10", "--cores", "4",
        ] + list(extra)

    def test_text_report_from_fresh_run(self, capsys):
        assert main(self._run_args()) == 0
        out = capsys.readouterr().out
        assert "run report: ysb/Klink" in out
        assert "decision timeline" in out
        assert "hottest operators" in out

    def test_json_report_validates_against_schema(self, capsys):
        import json

        from repro.obs.schema import validate_report

        assert main(self._run_args("--format", "json", "--check-schema")) == 0
        out = capsys.readouterr().out
        validate_report(json.loads(out))

    def test_report_from_saved_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        rc = main([
            "run", "--workload", "ysb", "--scheduler", "Default",
            "--queries", "2", "--duration", "10", "--cores", "4",
            "--trace", str(trace),
        ])
        assert rc == 0 and trace.exists()
        capsys.readouterr()
        assert main(["report", "--trace", str(trace), "--check-schema"]) == 0
        out = capsys.readouterr().out
        assert "run report: ysb/Default" in out

    def test_report_out_file(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "report.json"
        assert main(self._run_args("--out", str(out_path))) == 0
        payload = json.loads(out_path.read_text())
        assert payload["schema_version"] == 3

    def test_save_trace_while_reporting(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(self._run_args("--save-trace", str(trace))) == 0
        assert trace.exists() and trace.stat().st_size > 0

    def test_baseline_policy_reports_too(self, capsys):
        rc = main([
            "report", "--workload", "ysb", "--scheduler", "Default",
            "--queries", "2", "--duration", "10", "--cores", "4",
            "--check-schema",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "processor-share" in out

    def test_corrupt_trace_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "corrupt.jsonl"
        bad.write_text('{"type":"meta"}\nnot json at all\n')
        assert main(["report", "--trace", str(bad)]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_truncated_trace_exits_nonzero(self, tmp_path, capsys):
        # A finalized trace ends with its summary record; a file cut off
        # mid-run has cycles but no summary.
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text(
            '{"type":"meta","schema_version":2,"workload":"ysb",'
            '"scheduler":"Klink"}\n'
            '{"type":"cycle","time":120.0,"cycle":0,"decisions":[]}\n'
        )
        assert main(["report", "--trace", str(truncated)]) == 1
        assert "truncated trace" in capsys.readouterr().err

    def test_missing_meta_exits_nonzero(self, tmp_path, capsys):
        headless = tmp_path / "headless.jsonl"
        headless.write_text('{"type":"summary","mean_latency_ms":1.0}\n')
        assert main(["report", "--trace", str(headless)]) == 1
        assert "missing meta" in capsys.readouterr().err

    def test_check_schema_failure_exits_nonzero(self, tmp_path, capsys):
        # Well-formed container, but the cycle row is missing the
        # required "policy" key, so it violates CYCLE_SCHEMA.
        bad_row = tmp_path / "badrow.jsonl"
        bad_row.write_text(
            '{"type":"meta","schema_version":2,"workload":"ysb",'
            '"scheduler":"Klink"}\n'
            '{"type":"cycle","time":120.0,"cycle":0,"node":0,'
            '"mode":"priority","backpressured":false,"throttled":false,'
            '"memory_utilization":0.1,"cpu_used_ms":1.0,'
            '"overhead_ms":0.1,"decisions":[]}\n'
            '{"type":"summary","mean_latency_ms":1.0,"latency_cdf":[]}\n'
        )
        assert main(["report", "--trace", str(bad_row)]) == 0  # no --check-schema
        capsys.readouterr()
        rc = main(["report", "--trace", str(bad_row), "--check-schema"])
        assert rc == 1
        assert "[schema] FAIL" in capsys.readouterr().err

    def test_chrome_export_from_trace(self, tmp_path, capsys):
        import json

        from repro.obs.flame import validate_chrome_trace

        trace = tmp_path / "trace.jsonl"
        assert main(self._run_args("--save-trace", str(trace))) == 0
        capsys.readouterr()
        flame = tmp_path / "flame.json"
        rc = main([
            "report", "--trace", str(trace), "--chrome", str(flame),
        ])
        assert rc == 0
        payload = json.loads(flame.read_text())
        validate_chrome_trace(payload)
        assert any(e["ph"] == "X" for e in payload["traceEvents"])


class TestTelemetryFlags:
    def test_run_with_telemetry_reports_alerts_line(self, capsys):
        rc = main([
            "run", "--workload", "ysb", "--scheduler", "Klink",
            "--queries", "2", "--duration", "30", "--cores", "4",
            "--telemetry", "--slo-ms", "100", "--alert",
            "tight: latency_recent_p99_ms > 100 for 1s",
        ])
        assert rc == 0
        assert "[alerts" in capsys.readouterr().out

    def test_bench_json_emits_snapshot(self, tmp_path, capsys):
        import json

        bench = tmp_path / "BENCH_ysb.json"
        rc = main([
            "run", "--workload", "ysb", "--scheduler", "Klink",
            "--queries", "2", "--duration", "30", "--cores", "4",
            "--bench-json", str(bench),
        ])
        assert rc == 0
        payload = json.loads(bench.read_text())
        assert payload["snapshot_version"] == 1
        assert payload["workload"] == "ysb"
        assert payload["latency_ms"]["mean"] is not None

    def test_bad_alert_rule_is_rejected(self):
        from repro.obs import AlertRuleError

        with pytest.raises(AlertRuleError):
            main([
                "run", "--workload", "ysb", "--queries", "2",
                "--duration", "5", "--cores", "4",
                "--telemetry", "--alert", "gibberish rule",
            ])


class TestResilienceFlags:
    def test_defaults_off(self):
        args = build_parser().parse_args(["run"])
        assert args.checkpoint_period is None
        assert args.recover is None

    def test_parse_values(self):
        args = build_parser().parse_args([
            "run", "--checkpoint-period", "2500", "--recover", "standby",
        ])
        assert args.checkpoint_period == 2500.0
        assert args.recover == "standby"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--recover", "reboot"])

    def test_sweep_accepts_resilience_flags(self):
        args = build_parser().parse_args([
            "sweep", "--recover", "none", "--checkpoint-period", "1000",
        ])
        assert args.recover == "none"
        assert args.checkpoint_period == 1000.0

    def test_help_documents_flags(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--help"])
        out = capsys.readouterr().out
        assert "--checkpoint-period" in out
        assert "--recover" in out
        assert "standby" in out

    def test_run_with_recovery_flags(self, capsys):
        rc = main([
            "run", "--workload", "ysb", "--scheduler", "Default",
            "--queries", "2", "--duration", "25", "--cores", "4",
            "--faults", "5", "--check-invariants",
            "--recover", "restart", "--checkpoint-period", "2000",
        ])
        assert rc == 0
        assert "invariants OK" in capsys.readouterr().out
