"""Tests for cross-run regression comparison (repro.obs.compare):
snapshots, threshold-gated diffs, and the repro-bench compare CLI."""

import copy
import json
import math

import pytest

from repro.core.klink import KlinkScheduler
from repro.faults import FaultPlan
from repro.faults.plan import OperatorSlowdown
from repro.obs import (
    CompareThresholds,
    OperatorProfiler,
    TelemetryConfig,
    TelemetrySampler,
    Trace,
    compare_snapshots,
    load_snapshot,
    render_comparison,
    snapshot_from_trace,
    write_snapshot,
)
from repro.obs.compare import bench_snapshot_name, load_input
from repro.spe.engine import Engine
from repro.workloads import WorkloadParams, build_queries


def sample_snapshot():
    return {
        "snapshot_version": 1,
        "schema_version": 2,
        "workload": "ysb",
        "scheduler": "Klink",
        "n_queries": 4,
        "latency_ms": {"mean": 100.0, "p50": 80.0, "p90": 150.0, "p99": 200.0},
        "throughput_eps": 10_000.0,
        "deadline_misses": 0,
        "watermark_lag_ms": {"mean": 300.0, "max": 500.0},
        "alerts": {"total": 0, "by_rule": {}},
        "series_count": 10,
        "hottest_operators": [
            {"name": "ysb-0.agg", "cpu_ms": 400.0},
            {"name": "ysb-0.filter", "cpu_ms": 100.0},
        ],
    }


class TestSnapshot:
    def test_name_convention(self):
        assert bench_snapshot_name("ysb") == "BENCH_ysb.json"

    def test_from_trace_key_order_and_content(self):
        trace = Trace(
            meta={"schema_version": 2, "workload": "ysb",
                  "scheduler": "Klink", "n_queries": 2, "seed": 1},
            operators=[
                {"query_id": "q0", "name": "q0.a", "cpu_ms": 5.0},
                {"query_id": "q0", "name": "q0.b", "cpu_ms": 9.0},
            ],
            series=[{"name": "x"}],
            alerts=[{"rule": "slo"}, {"rule": "slo"}],
            summary={
                "mean_latency_ms": 10.0,
                "p90_latency_ms": 20.0,
                "p99_latency_ms": 30.0,
                "throughput_eps": 100.0,
                "deadline_misses": 3,
                "mean_watermark_lag_ms": 40.0,
                "max_watermark_lag_ms": 50.0,
                "latency_cdf": [[50.0, 12.0], [99.0, 30.0]],
            },
        )
        snap = snapshot_from_trace(trace, top_k=1)
        assert list(snap)[:2] == ["snapshot_version", "schema_version"]
        assert snap["workload"] == "ysb"
        assert snap["latency_ms"]["p50"] == 12.0  # read off the CDF
        assert snap["deadline_misses"] == 3
        assert snap["alerts"] == {"total": 2, "by_rule": {"slo": 2}}
        assert snap["series_count"] == 1
        assert snap["hottest_operators"] == [{"name": "q0.b", "cpu_ms": 9.0}]

    def test_rejects_bad_top_k(self):
        with pytest.raises(ValueError):
            snapshot_from_trace(Trace(), top_k=0)

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_ysb.json"
        write_snapshot(str(path), sample_snapshot())
        assert load_snapshot(str(path)) == sample_snapshot()

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"snapshot_version": 99}\n')
        with pytest.raises(ValueError, match="snapshot_version"):
            load_snapshot(str(path))

    def test_load_rejects_non_snapshot_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"hello": 1}\n')
        with pytest.raises(ValueError):
            load_snapshot(str(path))

    def test_load_input_autodetects_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"type":"meta","schema_version":2,"workload":"ysb"}\n'
            '{"type":"summary","mean_latency_ms":5.0,"latency_cdf":[]}\n'
        )
        snap = load_input(str(path))
        assert snap["latency_ms"]["mean"] == 5.0


class TestCompareSnapshots:
    def test_identical_snapshots_are_ok(self):
        result = compare_snapshots(sample_snapshot(), sample_snapshot())
        assert result.ok and not result.regressions
        assert "OK" in render_comparison(result)

    def test_latency_regression_detected(self):
        current = sample_snapshot()
        current["latency_ms"]["mean"] = 150.0  # +50% > 10% default
        result = compare_snapshots(sample_snapshot(), current)
        assert not result.ok
        assert [d.metric for d in result.regressions] == ["latency_ms.mean"]
        assert "REGRESSED" in render_comparison(result)

    def test_latency_improvement_is_ok(self):
        current = sample_snapshot()
        current["latency_ms"]["mean"] = 50.0
        assert compare_snapshots(sample_snapshot(), current).ok

    def test_throughput_drop_is_a_regression(self):
        current = sample_snapshot()
        current["throughput_eps"] = 5_000.0  # -50%
        result = compare_snapshots(sample_snapshot(), current)
        assert [d.metric for d in result.regressions] == ["throughput_eps"]

    def test_throughput_gain_is_ok(self):
        current = sample_snapshot()
        current["throughput_eps"] = 20_000.0
        assert compare_snapshots(sample_snapshot(), current).ok

    def test_new_alerts_and_misses_gate_absolutely(self):
        current = sample_snapshot()
        current["alerts"] = {"total": 1, "by_rule": {"slo": 1}}
        current["deadline_misses"] = 2
        result = compare_snapshots(sample_snapshot(), current)
        assert {d.metric for d in result.regressions} == {
            "alerts.total", "deadline_misses",
        }
        relaxed = CompareThresholds(max_new_alerts=1, max_new_deadline_misses=2)
        assert compare_snapshots(sample_snapshot(), current, relaxed).ok

    def test_abs_floor_ignores_tiny_latency_deltas(self):
        baseline = sample_snapshot()
        baseline["latency_ms"] = {"mean": 0.5, "p50": 0.5, "p90": 0.5, "p99": 0.5}
        current = copy.deepcopy(baseline)
        current["latency_ms"]["mean"] = 1.2  # +140% but only +0.7ms
        assert compare_snapshots(baseline, current).ok

    def test_missing_values_report_but_never_regress(self):
        current = sample_snapshot()
        current["latency_ms"]["p50"] = None
        current["watermark_lag_ms"] = {"mean": None, "max": None}
        result = compare_snapshots(sample_snapshot(), current)
        assert result.ok
        missing = {d.metric for d in result.missing}
        assert "latency_ms.p50" in missing
        assert "watermark_lag_ms.max" in missing
        assert set(result.to_dict()["missing"]) == missing

    def test_nan_vs_number_diffs_as_missing_not_regression(self):
        # A NaN metric (empty-input mean from an in-memory trace summary)
        # against a real number must surface as "missing" — even when the
        # numeric comparison would otherwise have been a huge regression.
        current = sample_snapshot()
        current["latency_ms"]["mean"] = float("nan")
        current["throughput_eps"] = float("nan")  # lower-is-worse metric
        result = compare_snapshots(sample_snapshot(), current)
        assert result.ok  # never a spurious regression
        missing = {d.metric for d in result.missing}
        assert "latency_ms.mean" in missing
        assert "throughput_eps" in missing
        by_metric = {d.metric: d for d in result.deltas}
        delta = by_metric["latency_ms.mean"]
        assert delta.limit == "missing"
        assert delta.current is None and delta.change_pct is None
        assert not delta.regressed
        rendered = render_comparison(result)
        assert "(missing)" in rendered
        assert "metric(s) missing" in rendered  # not a silent pass

    def test_nan_vs_nan_is_missing_not_silent_equality(self):
        baseline = sample_snapshot()
        current = sample_snapshot()
        baseline["latency_ms"]["p99"] = float("nan")
        current["latency_ms"]["p99"] = float("nan")
        result = compare_snapshots(baseline, current)
        assert result.ok
        by_metric = {d.metric: d for d in result.deltas}
        delta = by_metric["latency_ms.p99"]
        # NaN == NaN is false; the pinned semantics report the cell as
        # missing rather than pretending the two runs agreed.
        assert delta.limit == "missing"
        assert delta.baseline is None and delta.current is None
        assert "latency_ms.p99" in {d.metric for d in result.missing}

    def test_operator_cpu_growth_detected(self):
        current = sample_snapshot()
        current["hottest_operators"][0]["cpu_ms"] = 600.0  # +50% > 25%
        result = compare_snapshots(sample_snapshot(), current)
        assert [d.metric for d in result.regressions] == [
            "operator_cpu_ms.ysb-0.agg"
        ]

    def test_identity_mismatch_fails_comparison(self):
        current = sample_snapshot()
        current["scheduler"] = "Default"
        result = compare_snapshots(sample_snapshot(), current)
        assert not result.ok and result.identity_mismatches
        assert "identity mismatch" in render_comparison(result)

    def test_thresholds_reject_negative(self):
        with pytest.raises(ValueError):
            CompareThresholds(latency_pct=-1.0)


def run_ysb(*, fault=False, seed=1, duration=25_000.0):
    """One YSB run summarized into an in-memory snapshot."""
    from repro.spe.memory import GIB, MemoryConfig

    params = WorkloadParams(delay="uniform", rate_scale=1.0, seed=seed)
    queries = build_queries("ysb", 4, params)
    sampler = TelemetrySampler(TelemetryConfig())
    profiler = OperatorProfiler()
    faults = None
    if fault:
        faults = FaultPlan(
            [OperatorSlowdown(start_ms=3_000.0, end_ms=12_000.0, factor=10.0)]
        )
    engine = Engine(queries, KlinkScheduler(), cores=8, cycle_ms=120.0,
                    memory=MemoryConfig(capacity_bytes=1.0 * GIB),
                    seed=seed, faults=faults, profiler=profiler,
                    telemetry=sampler)
    metrics = engine.run(duration)
    from repro.bench.runner import trace_summary

    trace = Trace(
        meta={"schema_version": 2, "workload": "ysb", "scheduler": "Klink",
              "n_queries": 4, "seed": seed},
        operators=[p.to_dict() for p in metrics.operator_profiles],
        series=sampler.series_rows(),
        alerts=sampler.alert_rows(),
        summary=trace_summary(metrics),
    )
    return snapshot_from_trace(trace)


class TestEndToEndRegressionGate:
    def test_identical_reruns_compare_clean(self):
        a, b = run_ysb(), run_ysb()
        assert a == b  # fully deterministic snapshot
        assert compare_snapshots(a, b).ok

    def test_fault_injected_slowdown_flags_regression(self):
        baseline = run_ysb()
        slowed = run_ysb(fault=True)
        result = compare_snapshots(baseline, slowed)
        assert not result.ok
        metrics = {d.metric for d in result.regressions}
        # The slowdown shows up in delivered latency at minimum.
        assert any(m.startswith("latency_ms.") for m in metrics)


class TestCompareCli:
    def _run_trace(self, tmp_path, name="t.jsonl", seed=1):
        from repro.cli import main

        path = tmp_path / name
        # 30 s: past the 20 s random-deployment window, so the queries
        # actually deliver output (a 10 s run can end before deployment).
        rc = main([
            "run", "--workload", "ysb", "--scheduler", "Klink",
            "--queries", "2", "--duration", "30", "--cores", "4",
            "--seed", str(seed), "--trace", str(path),
        ])
        assert rc == 0
        return path

    def test_emit_then_compare_identical_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        trace_a = self._run_trace(tmp_path, "a.jsonl")
        trace_b = self._run_trace(tmp_path, "b.jsonl")
        bench = tmp_path / "BENCH_ysb.json"
        assert main(["compare", str(trace_a), "--emit", str(bench)]) == 0
        assert bench.exists()
        capsys.readouterr()
        assert main(["compare", str(bench), str(trace_b)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_single_input_prints_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        trace = self._run_trace(tmp_path)
        capsys.readouterr()
        assert main(["compare", str(trace)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["snapshot_version"] == 1

    def test_regression_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        trace = self._run_trace(tmp_path)
        snap = load_input(str(trace))
        # Fabricate a faster baseline: current then looks regressed.
        better = copy.deepcopy(snap)
        for key, value in better["latency_ms"].items():
            if value is not None:
                better["latency_ms"][key] = value * 0.5
        baseline = tmp_path / "baseline.json"
        write_snapshot(str(baseline), better)
        capsys.readouterr()
        assert main(["compare", str(baseline), str(trace)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_json_format_output(self, tmp_path, capsys):
        from repro.cli import main

        trace = self._run_trace(tmp_path)
        capsys.readouterr()
        assert main([
            "compare", str(trace), str(trace), "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_unreadable_input_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "junk.json"
        bad.write_text("{not json at all\n")
        assert main(["compare", str(bad), str(bad)]) == 2

    def test_three_inputs_exit_two(self, tmp_path):
        from repro.cli import main

        trace = self._run_trace(tmp_path)
        assert main(["compare", str(trace), str(trace), str(trace)]) == 2
