"""Unit tests for count-based windowed aggregation (Sec. 2.1)."""

import pytest

from repro.spe.events import EventBatch, Watermark
from repro.spe.operators import CountWindowedAggregate, SinkOperator


def make(size=100, outputs=5.0, incremental=True):
    op = CountWindowedAggregate(
        "cw", size=size, cost_per_event_ms=0.01,
        output_events_per_window=outputs, incremental=incremental,
    )
    sink = SinkOperator("s")
    op.connect(sink)
    return op, sink


def feed(op, count, t0=0.0, t1=100.0):
    op.inputs[0].push(EventBatch(count=count, t_start=t0, t_end=t1), 0.0)
    op.step(1e9, 0.0)


class TestFiring:
    def test_no_output_below_size(self):
        op, sink = make(size=100)
        feed(op, 99)
        assert op.windows_fired == 0
        assert sink.inputs[0].queued_events == 0

    def test_fires_at_size(self):
        op, sink = make(size=100, outputs=5.0)
        feed(op, 100)
        assert op.windows_fired == 1
        assert sink.inputs[0].queued_events == pytest.approx(5.0)

    def test_large_batch_fires_multiple_windows(self):
        op, sink = make(size=100, outputs=1.0)
        feed(op, 350)
        assert op.windows_fired == 3
        assert op.state_events == pytest.approx(50.0)

    def test_carryover_accumulates_across_batches(self):
        op, _ = make(size=100)
        feed(op, 60)
        feed(op, 60)
        assert op.windows_fired == 1
        assert op.state_events == pytest.approx(20.0)

    def test_fractional_mass_preserved(self):
        op, _ = make(size=10)
        feed(op, 10.5)
        assert op.windows_fired == 1
        assert op.state_events == pytest.approx(0.5)


class TestWatermarkAgnosticism:
    def test_watermark_forwarded_without_firing(self):
        op, sink = make(size=100)
        feed(op, 50)
        op.inputs[0].push(Watermark(1e9), 0.0)
        op.step(1e9, 0.0)
        assert op.windows_fired == 0
        records = [e.record for e in list(sink.inputs[0])]
        assert any(isinstance(r, Watermark) for r in records)

    def test_no_time_deadline(self):
        op, _ = make()
        import math

        assert op.next_deadline(0.0) == math.inf


class TestState:
    def test_incremental_state_is_compact(self):
        inc, _ = make(size=1000, incremental=True)
        raw, _ = make(size=1000, incremental=False)
        feed(inc, 500)
        feed(raw, 500)
        assert inc.state_bytes < raw.state_bytes

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            CountWindowedAggregate("bad", size=0, cost_per_event_ms=0.01)
