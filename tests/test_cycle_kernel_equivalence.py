"""Scalar-vs-vectorized cycle-kernel equivalence gates (ISSUE 10 tentpole).

The vectorized cycle kernel (amortized delay draws in source generation,
the per-cycle calendar-queue network, SoA scheduler evaluation) is a pure
wall-clock optimization: with ``vectorized=False`` the engine runs the
scalar reference path, and the two must produce byte-identical

* ``RunMetrics.summary()`` output,
* JSONL traces (cycle decisions, series samples, alerts, summary),
* checkpoint snapshot bytes (the codec captures the canonical
  ``network_entries`` form, independent of the active network layout),

including under fault injection, checkpoint/restore failover, lineage
tracing, and sustained backpressure (multi-cycle deferral re-ordering is
where a bucketed network could silently diverge from the heap). These
tests pin that contract; CI additionally enforces it end-to-end through
the CLI (see ``cycle-kernel determinism`` in ci.yml).
"""

import functools
import itertools
import json

import pytest

import repro.spe.events as events_mod
from repro.bench.runner import (
    SCHEDULER_NAMES,
    ExperimentConfig,
    make_scheduler,
    run_experiment,
)
from repro.faults import FaultPlan, InvariantMonitor, NodeFailure
from repro.resilience import CheckpointCoordinator, RecoveryConfig, RecoveryManager
from repro.resilience.checkpoint import capture, serialize
from repro.spe.engine import Engine
from repro.workloads import WorkloadParams, build_queries
from tests.helpers import make_simple_query

DURATION_MS = 6_000.0
N_QUERIES = 3
SEED = 7


@functools.lru_cache(maxsize=None)
def summary_fingerprint(workload: str, scheduler: str, vectorized: bool) -> str:
    cfg = ExperimentConfig(
        workload=workload,
        scheduler=scheduler,
        duration_ms=DURATION_MS,
        n_queries=N_QUERIES,
        seed=SEED,
        vectorized=vectorized,
    )
    result = run_experiment(cfg)
    return json.dumps(result.summary, sort_keys=True)


class TestSummaryEquivalence:
    @pytest.mark.parametrize("scheduler", ["Klink", "Default"])
    @pytest.mark.parametrize("workload", ["ysb", "lrb"])
    def test_smoke_slice(self, workload, scheduler):
        reference = summary_fingerprint(workload, scheduler, False)
        assert summary_fingerprint(workload, scheduler, True) == reference

    @pytest.mark.chaos
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    @pytest.mark.parametrize("workload", ["ysb", "lrb"])
    def test_full_matrix(self, workload, scheduler):
        reference = summary_fingerprint(workload, scheduler, False)
        assert summary_fingerprint(workload, scheduler, True) == reference


class TestTraceEquivalence:
    def test_jsonl_trace_bytes_identical(self, tmp_path):
        # A fully-observed run (trace + audit + telemetry): every record
        # the exporter writes must be byte-identical across kernels.
        def trace_bytes(vectorized: bool) -> bytes:
            path = tmp_path / f"trace_vec{int(vectorized)}.jsonl"
            cfg = ExperimentConfig(
                workload="ysb",
                scheduler="Klink",
                duration_ms=DURATION_MS,
                n_queries=N_QUERIES,
                seed=SEED,
                audit=True,
                telemetry=True,
                trace_path=str(path),
                vectorized=vectorized,
            )
            run_experiment(cfg)
            return path.read_bytes()

        reference = trace_bytes(False)
        assert len(reference) > 0
        assert trace_bytes(True) == reference


class TestLineageTracedEquivalence:
    def test_lineage_traced_summary_identical(self):
        # Lineage tracing is a pure observer over the ingest/emit path the
        # vectorized kernel restructures; a sampled run must stay
        # byte-identical across kernels (and to the untraced run).
        def fp(vectorized: bool) -> str:
            cfg = ExperimentConfig(
                workload="ysb",
                scheduler="Klink",
                duration_ms=DURATION_MS,
                n_queries=N_QUERIES,
                seed=SEED,
                lineage_sample_rate=0.05,
                vectorized=vectorized,
            )
            return json.dumps(run_experiment(cfg).summary, sort_keys=True)

        assert fp(True) == fp(False)
        assert fp(True) == summary_fingerprint("ysb", "Klink", False)


class TestFaultInjectedEquivalence:
    # The fault-injected generation path draws every delay of the horizon
    # in one sample_batch call and applies the range fault hooks
    # (source_hold_until / watermark drops / extra delays); the scalar
    # path applies the same hooks per record. These runs pin them equal.
    @pytest.mark.parametrize("workload", ["ysb", "lrb"])
    def test_fault_seeded_summary_identical(self, workload):
        def fp(vectorized: bool) -> str:
            cfg = ExperimentConfig(
                workload=workload,
                scheduler="Klink",
                duration_ms=DURATION_MS,
                n_queries=N_QUERIES,
                seed=SEED,
                fault_seed=3,
                check_invariants=True,
                vectorized=vectorized,
            )
            result = run_experiment(cfg)
            assert result.monitor is not None and result.monitor.ok
            return json.dumps(result.summary, sort_keys=True)

        assert fp(True) == fp(False)


def _failover_fingerprint(
    workload: str, scheduler: str, vectorized: bool, fail_at: float
) -> str:
    """Summary of a run that checkpoints, fails mid-flight, and recovers.

    Restore loads the snapshot's canonical network list into whichever
    layout (heap or calendar) the engine runs, so a recovery mid-run
    exercises the round-trip both ways.
    """
    queries = build_queries(workload, N_QUERIES, WorkloadParams(seed=SEED))
    monitor = InvariantMonitor()
    coordinator = CheckpointCoordinator(2_000.0)
    recovery = RecoveryManager(RecoveryConfig("restart"), coordinator)
    engine = Engine(
        queries,
        make_scheduler(scheduler),
        cores=8,
        cycle_ms=100.0,
        seed=SEED,
        faults=FaultPlan([NodeFailure(fail_at, fail_at + 3_000.0, node=0)]),
        invariants=monitor,
        checkpoints=coordinator,
        recovery=recovery,
        vectorized=vectorized,
    )
    metrics = engine.run(20_000.0)
    assert monitor.ok, str(monitor)
    assert metrics.checkpoints_taken >= 1
    assert metrics.recoveries >= 1
    return json.dumps(metrics.summary(), sort_keys=True)


class TestCheckpointedFailoverEquivalence:
    def test_failover_resumes_byte_identically(self):
        reference = _failover_fingerprint("ysb", "Klink", False, 8_000.0)
        assert _failover_fingerprint("ysb", "Klink", True, 8_000.0) == reference

    @pytest.mark.chaos
    @pytest.mark.parametrize("fail_at", [5_000.0, 12_000.0])
    @pytest.mark.parametrize("scheduler", ["Klink", "Default"])
    @pytest.mark.parametrize("workload", ["ysb", "lrb"])
    def test_failover_matrix(self, workload, scheduler, fail_at):
        reference = _failover_fingerprint(workload, scheduler, False, fail_at)
        assert (
            _failover_fingerprint(workload, scheduler, True, fail_at) == reference
        )


class TestCheckpointBytesEquivalence:
    def test_snapshot_bytes_identical_across_kernels(self):
        # The codec serializes the network as the (ingest_time, seq)-sorted
        # canonical list; heap and calendar layouts must encode to the
        # exact same bytes mid-run.
        def snapshot(vectorized: bool) -> str:
            # LatencyMarker ids are process-global; reset so both runs
            # number their markers identically.
            events_mod._marker_ids = itertools.count()
            queries = build_queries("ysb", N_QUERIES, WorkloadParams(seed=SEED))
            engine = Engine(
                queries,
                make_scheduler("Klink"),
                cores=8,
                cycle_ms=100.0,
                seed=SEED,
                vectorized=vectorized,
            )
            # Long enough that every staggered source has deployed and
            # is actively drawing delays when the snapshot is taken.
            engine.run(25_000.0)
            if vectorized:
                # The gate must be non-trivial: the vectorized engine is
                # amortizing draws and at least one model has prefetched
                # values pending mid-block, so the codec's logical-state
                # reconstruction is actually exercised.
                assert engine._amortized_draws
                assert any(
                    b.spec.delay_model._draw_pos
                    < len(b.spec.delay_model._draw_buf)
                    for q in queries
                    for b in q.bindings
                )
            return serialize(capture(engine))

        reference = snapshot(False)
        assert len(reference) > 0
        assert snapshot(True) == reference


class TestDeferralOrderUnderBackpressure:
    def test_consecutive_backpressured_cycles_identical(self):
        # A memory budget small enough to keep the run backpressured for
        # consecutive cycles: every deferred payload batch re-enters the
        # network with a fresh (ingest_time, seq) key each cycle, so any
        # ordering drift between the heap and the calendar queue compounds
        # and shows up in the summary. Both kernels must agree byte-for-
        # byte, and the scenario must actually exercise the deferral path.
        def run(vectorized: bool):
            cfg = ExperimentConfig(
                workload="ysb",
                scheduler="Default",
                duration_ms=30_000.0,
                n_queries=N_QUERIES,
                seed=SEED,
                cores=1,
                rate_scale=8.0,
                memory_gb=0.0001,
                vectorized=vectorized,
            )
            return run_experiment(cfg)

        scalar = run(False)
        vec = run(True)
        assert scalar.metrics.backpressure_cycles >= 2
        assert json.dumps(vec.summary, sort_keys=True) == json.dumps(
            scalar.summary, sort_keys=True
        )


class TestBurstStateDeterminism:
    """The burst state machine consumes ``binding.rng`` in interval order;
    the vectorized kernel's per-horizon rate sweep must walk it exactly
    like the scalar per-interval loop, and reruns must be bit-stable."""

    @staticmethod
    def _bursty_fingerprint(vectorized: bool, seed: int) -> str:
        queries = [
            make_simple_query(
                "bursty-q0", rate_eps=5_000.0, burst_factor=3.0, seed=seed
            )
        ]
        engine = Engine(
            queries,
            make_scheduler("Default"),
            cores=2,
            cycle_ms=100.0,
            seed=seed,
            vectorized=vectorized,
        )
        metrics = engine.run(10_000.0)
        return json.dumps(metrics.summary(), sort_keys=True)

    def test_same_seed_is_byte_stable(self):
        assert self._bursty_fingerprint(True, 5) == self._bursty_fingerprint(True, 5)

    def test_scalar_and_vectorized_agree(self):
        assert self._bursty_fingerprint(True, 5) == self._bursty_fingerprint(False, 5)

    def test_seed_actually_drives_the_burst_walk(self):
        assert self._bursty_fingerprint(True, 5) != self._bursty_fingerprint(True, 6)
