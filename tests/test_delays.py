"""Unit tests for the network delay models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.delays import (
    ConstantDelay,
    ExponentialDelay,
    UniformDelay,
    ZipfDelay,
)


class TestConstantDelay:
    def test_sample_is_constant(self):
        model = ConstantDelay(25.0)
        assert all(model.sample() == 25.0 for _ in range(10))

    def test_bound_and_mean(self):
        model = ConstantDelay(25.0)
        assert model.bound == 25.0
        assert model.mean == 25.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)


class TestUniformDelay:
    def test_samples_within_range(self):
        model = UniformDelay(10.0, 20.0, seed=0)
        samples = [model.sample() for _ in range(500)]
        assert all(10.0 <= s <= 20.0 for s in samples)

    def test_mean_matches_analytic(self):
        model = UniformDelay(0.0, 100.0, seed=1)
        samples = [model.sample() for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(model.mean, rel=0.05)

    def test_bound_is_high_end(self):
        assert UniformDelay(0.0, 500.0).bound == 500.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            UniformDelay(10.0, 5.0)

    def test_seeded_streams_are_reproducible(self):
        a = UniformDelay(0, 100, seed=7)
        b = UniformDelay(0, 100, seed=7)
        assert [a.sample() for _ in range(5)] == [b.sample() for _ in range(5)]

    def test_reseed_restarts_stream(self):
        model = UniformDelay(0, 100, seed=7)
        first = [model.sample() for _ in range(5)]
        model.reseed(7)
        assert [model.sample() for _ in range(5)] == first


class TestZipfDelay:
    def test_samples_within_bound(self):
        model = ZipfDelay(a=0.99, max_ms=500.0, seed=0)
        samples = [model.sample() for _ in range(500)]
        assert all(0.0 <= s <= 500.0 for s in samples)

    def test_small_delays_dominate(self):
        # Rank 1 (smallest delay) is the most probable outcome.
        model = ZipfDelay(a=0.99, max_ms=500.0, seed=0)
        samples = np.array([model.sample() for _ in range(2000)])
        assert np.median(samples) < model.mean

    def test_mean_matches_empirical(self):
        model = ZipfDelay(a=0.99, max_ms=500.0, seed=2)
        samples = [model.sample() for _ in range(10000)]
        assert np.mean(samples) == pytest.approx(model.mean, rel=0.1)

    def test_heavier_shape_compresses_bulk(self):
        flat = ZipfDelay(a=0.99, shape=1.0, seed=0)
        heavy = ZipfDelay(a=0.99, shape=3.0, seed=0)
        assert heavy.mean < flat.mean  # same ranks mapped to smaller bulk

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfDelay(a=0.0)
        with pytest.raises(ValueError):
            ZipfDelay(n_ranks=1)
        with pytest.raises(ValueError):
            ZipfDelay(shape=0.0)


class TestExponentialDelay:
    def test_samples_capped(self):
        model = ExponentialDelay(mean_ms=50.0, cap_ms=100.0, seed=0)
        assert all(model.sample() <= 100.0 for _ in range(500))

    def test_truncated_mean_analytic(self):
        model = ExponentialDelay(mean_ms=50.0, cap_ms=100.0, seed=3)
        samples = [model.sample() for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(model.mean, rel=0.05)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            ExponentialDelay(0.0)


class TestRngHandling:
    def test_rng_and_seed_are_mutually_exclusive(self):
        from repro.net.delays import DelayModel

        class Probe(DelayModel):
            def sample(self):
                return 0.0

            @property
            def bound(self):
                return 0.0

            @property
            def mean(self):
                return 0.0

        Probe(seed=1)  # either alone is fine
        Probe(rng=np.random.default_rng(1))
        with pytest.raises(ValueError):
            Probe(rng=np.random.default_rng(1), seed=1)


# -- batched draws (ISSUE 10: vectorized cycle kernel) ------------------------


def _make_models(seed: int) -> list:
    """One instance of every shipped DelayModel subclass, seeded."""
    return [
        ConstantDelay(25.0),
        UniformDelay(10.0, 20.0, seed=seed),
        ZipfDelay(a=0.99, max_ms=500.0, seed=seed),
        ExponentialDelay(mean_ms=50.0, cap_ms=120.0, seed=seed),
    ]


class TestSampleBatchBitIdentity:
    """sample_batch(n) must be bit-identical to n sequential sample()
    calls from an identically-seeded twin — the contract the vectorized
    generation kernel rests on."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_subclass(self, seed, n):
        for batched, scalar in zip(_make_models(seed), _make_models(seed)):
            expected = [scalar.sample() for _ in range(n)]
            got = batched.sample_batch(n).tolist()
            assert got == expected, type(batched).__name__

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_interleaved_draws_share_the_stream(self, seed):
        # Mixing sample() and sample_batch() consumes the generator
        # identically to all-scalar draws.
        for mixed, scalar in zip(_make_models(seed), _make_models(seed)):
            got = [mixed.sample(), *mixed.sample_batch(3).tolist(), mixed.sample()]
            expected = [scalar.sample() for _ in range(5)]
            assert got == expected, type(mixed).__name__

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=600),
    )
    @settings(max_examples=20, deadline=None)
    def test_sample_amortized_value_stream(self, seed, n):
        # Block-prefetched draws return the exact sample() value stream
        # (spanning at least one 256-draw refill boundary at n > 256).
        for amortized, scalar in zip(_make_models(seed), _make_models(seed)):
            got = [amortized.sample_amortized() for _ in range(n)]
            expected = [scalar.sample() for _ in range(n)]
            assert got == expected, type(amortized).__name__

    def test_reseed_discards_prefetched_draws(self):
        model = UniformDelay(0.0, 100.0, seed=3)
        model.sample_amortized()  # fills the 256-draw buffer
        model.reseed(3)
        twin = UniformDelay(0.0, 100.0, seed=3)
        assert [model.sample_amortized() for _ in range(5)] == [
            twin.sample() for _ in range(5)
        ]


class TestCappedExponentialMean:
    def test_monte_carlo_matches_analytic(self):
        # Seeded MC estimate of E[min(X, cap)] against the closed form
        # m * (1 - exp(-cap/m)); tight tolerance, deterministic draws.
        model = ExponentialDelay(mean_ms=50.0, cap_ms=120.0, seed=11)
        samples = model.sample_batch(400_000)
        assert float(np.mean(samples)) == pytest.approx(model.mean, rel=1e-2)

    def test_infinite_cap_mean_is_exact(self):
        # cap = inf: no truncation, the mean is exactly the exponential's.
        model = ExponentialDelay(mean_ms=75.0, cap_ms=math.inf)
        assert model.mean == 75.0
        assert model.bound == math.inf


class TestLogicalRngCheckpoint:
    """checkpoint_rng_state() must expose the *consumed-draw* position:
    identical whether or not draws were block-prefetched, and restorable
    into the exact same forward stream."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        consumed=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=25, deadline=None)
    def test_state_matches_plain_sample_twin(self, seed, consumed):
        for amortized, scalar in zip(_make_models(seed), _make_models(seed)):
            if type(amortized) is ConstantDelay:
                continue  # seed-pinned; state comparison is vacuous
            for _ in range(consumed):
                amortized.sample_amortized()
                scalar.sample()
            assert (
                amortized.checkpoint_rng_state()
                == scalar.checkpoint_rng_state()
            ), type(amortized).__name__

    def test_checkpoint_leaves_live_stream_untouched(self):
        model = UniformDelay(0.0, 100.0, seed=9)
        twin = UniformDelay(0.0, 100.0, seed=9)
        for _ in range(10):
            model.sample_amortized()
            twin.sample_amortized()
        model.checkpoint_rng_state()
        assert [model.sample_amortized() for _ in range(500)] == [
            twin.sample_amortized() for _ in range(500)
        ]

    def test_restore_resumes_identical_stream(self):
        model = UniformDelay(0.0, 100.0, seed=4)
        for _ in range(37):  # mid-block: prefetch is pending
            model.sample_amortized()
        state = model.checkpoint_rng_state()
        expected = [model.sample_amortized() for _ in range(400)]
        fresh = UniformDelay(0.0, 100.0, seed=999)
        fresh.sample_amortized()  # dirty its buffer first
        fresh.restore_rng_state(state)
        assert [fresh.sample_amortized() for _ in range(400)] == expected
