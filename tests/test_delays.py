"""Unit tests for the network delay models."""

import numpy as np
import pytest

from repro.net.delays import (
    ConstantDelay,
    ExponentialDelay,
    UniformDelay,
    ZipfDelay,
)


class TestConstantDelay:
    def test_sample_is_constant(self):
        model = ConstantDelay(25.0)
        assert all(model.sample() == 25.0 for _ in range(10))

    def test_bound_and_mean(self):
        model = ConstantDelay(25.0)
        assert model.bound == 25.0
        assert model.mean == 25.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)


class TestUniformDelay:
    def test_samples_within_range(self):
        model = UniformDelay(10.0, 20.0, seed=0)
        samples = [model.sample() for _ in range(500)]
        assert all(10.0 <= s <= 20.0 for s in samples)

    def test_mean_matches_analytic(self):
        model = UniformDelay(0.0, 100.0, seed=1)
        samples = [model.sample() for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(model.mean, rel=0.05)

    def test_bound_is_high_end(self):
        assert UniformDelay(0.0, 500.0).bound == 500.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            UniformDelay(10.0, 5.0)

    def test_seeded_streams_are_reproducible(self):
        a = UniformDelay(0, 100, seed=7)
        b = UniformDelay(0, 100, seed=7)
        assert [a.sample() for _ in range(5)] == [b.sample() for _ in range(5)]

    def test_reseed_restarts_stream(self):
        model = UniformDelay(0, 100, seed=7)
        first = [model.sample() for _ in range(5)]
        model.reseed(7)
        assert [model.sample() for _ in range(5)] == first


class TestZipfDelay:
    def test_samples_within_bound(self):
        model = ZipfDelay(a=0.99, max_ms=500.0, seed=0)
        samples = [model.sample() for _ in range(500)]
        assert all(0.0 <= s <= 500.0 for s in samples)

    def test_small_delays_dominate(self):
        # Rank 1 (smallest delay) is the most probable outcome.
        model = ZipfDelay(a=0.99, max_ms=500.0, seed=0)
        samples = np.array([model.sample() for _ in range(2000)])
        assert np.median(samples) < model.mean

    def test_mean_matches_empirical(self):
        model = ZipfDelay(a=0.99, max_ms=500.0, seed=2)
        samples = [model.sample() for _ in range(10000)]
        assert np.mean(samples) == pytest.approx(model.mean, rel=0.1)

    def test_heavier_shape_compresses_bulk(self):
        flat = ZipfDelay(a=0.99, shape=1.0, seed=0)
        heavy = ZipfDelay(a=0.99, shape=3.0, seed=0)
        assert heavy.mean < flat.mean  # same ranks mapped to smaller bulk

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfDelay(a=0.0)
        with pytest.raises(ValueError):
            ZipfDelay(n_ranks=1)
        with pytest.raises(ValueError):
            ZipfDelay(shape=0.0)


class TestExponentialDelay:
    def test_samples_capped(self):
        model = ExponentialDelay(mean_ms=50.0, cap_ms=100.0, seed=0)
        assert all(model.sample() <= 100.0 for _ in range(500))

    def test_truncated_mean_analytic(self):
        model = ExponentialDelay(mean_ms=50.0, cap_ms=100.0, seed=3)
        samples = [model.sample() for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(model.mean, rel=0.05)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            ExponentialDelay(0.0)


class TestRngHandling:
    def test_rng_and_seed_are_mutually_exclusive(self):
        from repro.net.delays import DelayModel

        class Probe(DelayModel):
            def sample(self):
                return 0.0

            @property
            def bound(self):
                return 0.0

            @property
            def mean(self):
                return 0.0

        Probe(seed=1)  # either alone is fine
        Probe(rng=np.random.default_rng(1))
        with pytest.raises(ValueError):
            Probe(rng=np.random.default_rng(1), seed=1)
