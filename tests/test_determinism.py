"""Determinism under fault injection (ISSUE satellite 1).

Two runs with the same seed and the same active :class:`FaultPlan` must
produce *byte-identical* metrics — the fault layer is a pure function of
(identity, time), so it must not perturb the engine's RNG streams or
introduce any order-dependence. A different seed must produce different
network-delay samples (the runs genuinely differ, rather than the seed
being ignored).
"""

import dataclasses

from repro.core.klink import KlinkScheduler
from repro.faults import (
    FaultPlan,
    InvariantMonitor,
    MemoryPressureSpike,
    OperatorSlowdown,
    SourceStall,
    WatermarkStraggler,
)
from repro.net.delays import UniformDelay
from repro.spe.engine import Engine
from repro.spe.operators import FilterOperator, SinkOperator, WindowedAggregate
from repro.spe.query import Query, SourceBinding, SourceSpec, chain
from repro.spe.windows import TumblingEventTimeWindows


def make_stochastic_query(query_id: str = "q0", *, seed: int = 0) -> Query:
    """source -> filter -> window -> sink with a *random* delay model."""
    delay_model = UniformDelay(0.0, 400.0, seed=seed)
    spec = SourceSpec(
        name=f"{query_id}.src",
        rate_eps=800.0,
        watermark_period_ms=500.0,
        lateness_ms=delay_model.bound,
        delay_model=delay_model,
    )
    filt = FilterOperator(f"{query_id}.filter", 0.01, selectivity=0.5)
    window = WindowedAggregate(
        f"{query_id}.window",
        TumblingEventTimeWindows(1000.0),
        cost_per_event_ms=0.01,
        output_events_per_pane=10.0,
        key_by="key",
    )
    sink = SinkOperator(f"{query_id}.sink")
    operators = chain(filt, window, sink)
    binding = SourceBinding(spec, filt, seed=seed)
    return Query(query_id, [binding], operators, sink)


def make_plan() -> FaultPlan:
    return FaultPlan([
        SourceStall(2_000.0, 4_000.0),
        WatermarkStraggler(5_000.0, 9_000.0, extra_delay_ms=1_500.0),
        OperatorSlowdown(10_000.0, 13_000.0, factor=3.0),
        MemoryPressureSpike(14_000.0, 16_000.0, extra_bytes=64 * 1024 * 1024),
    ])


def run_once(seed: int, faults: FaultPlan | None):
    engine = Engine(
        [make_stochastic_query(seed=seed)],
        KlinkScheduler(),
        cores=2,
        cycle_ms=100.0,
        seed=seed,
        faults=faults,
        invariants=InvariantMonitor(),
    )
    metrics = engine.run(20_000.0)
    return engine, metrics


def fingerprint(metrics) -> str:
    """Full repr of every RunMetrics field — byte-identical or not."""
    return repr(dataclasses.asdict(metrics))


class TestDeterminism:
    def test_same_seed_same_plan_byte_identical(self):
        _, a = run_once(seed=42, faults=make_plan())
        _, b = run_once(seed=42, faults=make_plan())
        assert fingerprint(a) == fingerprint(b)

    def test_same_seed_no_faults_byte_identical(self):
        _, a = run_once(seed=7, faults=None)
        _, b = run_once(seed=7, faults=None)
        assert fingerprint(a) == fingerprint(b)

    def test_different_seed_different_delay_samples(self):
        engine_a, a = run_once(seed=1, faults=make_plan())
        engine_b, b = run_once(seed=2, faults=make_plan())
        # The seed feeds the network-delay RNG: the observed delay moments
        # must differ between the two runs.
        pa = engine_a.queries[0].bindings[0].progress
        pb = engine_b.queries[0].bindings[0].progress
        assert pa is not None and pb is not None
        assert pa.current_epoch_mean() != pb.current_epoch_mean()
        assert fingerprint(a) != fingerprint(b)

    def test_fault_plan_changes_the_run(self):
        _, clean = run_once(seed=42, faults=None)
        _, faulty = run_once(seed=42, faults=make_plan())
        assert fingerprint(clean) != fingerprint(faulty)
        assert faulty.fault_cycles > 0
