"""Unit tests for the distributed design (Sec. 4): placement, information
forwarding, and the multi-node engine."""

import math

import pytest

from repro.core.baselines import DefaultScheduler
from repro.spe.engine import Engine
from repro.distributed import (
    DistributedEngine,
    ForwardingBoard,
    PhysicalPlan,
    QueryInfo,
)
from repro.distributed.cluster import DistributedKlinkScheduler
from tests.helpers import make_join_query, make_simple_query


class TestPhysicalPlan:
    def test_locality_places_whole_pipelines(self):
        queries = [make_simple_query(f"q{i}") for i in range(4)]
        plan = PhysicalPlan.locality(queries, 2)
        for i, q in enumerate(queries):
            nodes = {plan.node_of_operator(op) for op in q.operators}
            assert nodes == {i % 2}
            assert not plan.is_split(q)

    def test_locality_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            PhysicalPlan.locality([make_simple_query()], 0)

    def test_split_produces_contiguous_forward_segments(self):
        queries = [make_simple_query(f"q{i}") for i in range(3)]
        plan = PhysicalPlan.split(queries, 4, segments=2)
        for q in queries:
            assert plan.is_split(q)
            # Cross-node edges point from an upstream op to its downstream.
            for op in plan.cross_node_edges(q):
                down = q.downstream_of(op)
                assert down is not None
                assert plan.node_of_operator(op) != plan.node_of_operator(down)

    def test_split_single_node_degenerates_to_locality(self):
        queries = [make_simple_query("q0")]
        plan = PhysicalPlan.split(queries, 1, segments=2)
        assert not plan.is_split(queries[0])

    def test_source_node(self):
        queries = [make_simple_query(f"q{i}") for i in range(2)]
        plan = PhysicalPlan.locality(queries, 2)
        assert plan.source_node(queries[0]) == 0
        assert plan.source_node(queries[1]) == 1

    def test_local_operators_partition_the_pipeline(self):
        queries = [make_simple_query("q0")]
        plan = PhysicalPlan.split(queries, 2, segments=2)
        q = queries[0]
        locals0 = plan.local_operators(q, 0)
        locals1 = plan.local_operators(q, 1)
        assert set(locals0) | set(locals1) == set(q.operators)
        assert not set(locals0) & set(locals1)


class TestForwardingBoard:
    def test_local_reads_are_fresh(self):
        board = ForwardingBoard(rpc_latency_ms=100.0)
        board.publish(0, "q", QueryInfo(published_at=1000.0, mu=42.0))
        info = board.read(0, 0, "q", now=1000.0)
        assert info.mu == 42.0

    def test_remote_reads_lag_by_rpc_latency(self):
        board = ForwardingBoard(rpc_latency_ms=100.0)
        board.publish(0, "q", QueryInfo(published_at=900.0, mu=1.0))
        board.publish(0, "q", QueryInfo(published_at=1000.0, mu=2.0))
        info = board.read(1, 0, "q", now=1050.0)
        assert info.mu == 1.0  # the 1000.0 snapshot is still in flight

    def test_remote_read_none_when_nothing_delivered_yet(self):
        board = ForwardingBoard(rpc_latency_ms=100.0)
        board.publish(0, "q", QueryInfo(published_at=1000.0))
        assert board.read(1, 0, "q", now=1000.0) is None

    def test_unknown_key_is_none(self):
        assert ForwardingBoard().read(0, 1, "nope", now=0.0) is None

    def test_history_keeps_two_snapshots(self):
        board = ForwardingBoard(rpc_latency_ms=10.0)
        for t in (0.0, 100.0, 200.0):
            board.publish(0, "q", QueryInfo(published_at=t, mu=t))
        assert board.read(1, 0, "q", now=250.0).mu == 200.0
        assert board.read(1, 0, "q", now=205.0).mu == 100.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            ForwardingBoard(rpc_latency_ms=-1.0)


class TestDistributedEngine:
    def test_locality_runs_and_measures(self):
        queries = [make_simple_query(f"q{i}", rate_eps=500.0) for i in range(4)]
        plan = PhysicalPlan.locality(queries, 2)
        engine = DistributedEngine.with_policy(queries, plan, DefaultScheduler)
        metrics = engine.run(10_000.0)
        assert len(metrics.swm_latencies) > 0

    def test_split_pipelines_deliver_across_nodes(self):
        queries = [make_simple_query(f"q{i}", rate_eps=500.0) for i in range(2)]
        plan = PhysicalPlan.split(queries, 2, segments=2)
        engine = DistributedEngine.with_klink(queries, plan, rpc_latency_ms=50.0)
        metrics = engine.run(10_000.0)
        assert len(metrics.swm_latencies) > 0
        # Sinks actually received events across the node boundary.
        assert any(q.sink.events_delivered > 0 for q in queries)

    def test_rpc_latency_adds_to_output_latency(self):
        def run(rpc):
            queries = [make_simple_query("q0", rate_eps=500.0, delay_ms=10.0)]
            plan = PhysicalPlan.split(queries, 2, segments=2)
            engine = DistributedEngine.with_klink(
                queries, plan, rpc_latency_ms=rpc
            )
            return engine.run(10_000.0).mean_latency_ms

        assert run(400.0) > run(1.0) + 200.0

    def test_per_node_schedulers_instantiated(self):
        queries = [make_simple_query(f"q{i}") for i in range(2)]
        plan = PhysicalPlan.locality(queries, 2)
        engine = DistributedEngine.with_klink(queries, plan)
        assert len(engine.node_schedulers) == 2
        assert all(
            isinstance(s, DistributedKlinkScheduler)
            for s in engine.node_schedulers
        )

    def test_distributed_klink_uses_forwarded_info_for_remote_sources(self):
        queries = [make_simple_query(f"q{i}", rate_eps=500.0) for i in range(2)]
        plan = PhysicalPlan.locality(queries, 2)
        engine = DistributedEngine.with_klink(queries, plan)
        engine.run(5_000.0)
        # Node 1's scheduler evaluated q0 (whose source is on node 0)
        # through the board without error and produced a finite slack for
        # its local query.
        sched1 = engine.node_schedulers[1]
        assert queries[1].query_id in sched1.last_slacks

    def test_aggregate_capacity_scales_with_nodes(self):
        def run(nodes):
            queries = [
                make_simple_query(f"q{i}", rate_eps=30_000.0, cost_ms=0.05)
                for i in range(4)
            ]
            plan = PhysicalPlan.locality(queries, nodes)
            engine = DistributedEngine.with_policy(
                queries, plan, DefaultScheduler, cores_per_node=2
            )
            return engine.run(10_000.0).total_events_processed

        assert run(4) > run(1) * 1.2


class TestDistributedUnderStress:
    def test_distributed_klink_mm_throttles_cluster_wide(self):
        from repro.spe.memory import MemoryConfig

        queries = [
            make_simple_query(f"q{i}", rate_eps=30_000.0, cost_ms=0.2)
            for i in range(4)
        ]
        plan = PhysicalPlan.locality(queries, 2)
        engine = DistributedEngine.with_klink(
            queries,
            plan,
            cores_per_node=2,
            memory=MemoryConfig(capacity_bytes=2_000_000.0),
        )
        metrics = engine.run(20_000.0)
        # Memory management engaged on at least one node and input was
        # shed while it ran.
        episodes = sum(s.mm_episodes for s in engine.node_schedulers)
        assert episodes > 0
        assert metrics.events_shed > 0

    def test_overhead_charged_per_node(self):
        queries = [make_simple_query(f"q{i}") for i in range(4)]
        plan = PhysicalPlan.locality(queries, 2)
        engine = DistributedEngine.with_klink(queries, plan)
        metrics = engine.run(5_000.0)
        # Both nodes' Klink instances contribute evaluation overhead.
        single = Engine(
            [make_simple_query(f"s{i}") for i in range(4)],
            __import__("repro.core.klink", fromlist=["KlinkScheduler"]).KlinkScheduler(),
        )
        single_metrics = single.run(5_000.0)
        assert metrics.scheduler_overhead_ms > single_metrics.scheduler_overhead_ms


class TestSweepHelper:
    def test_sweep_returns_grid(self):
        from repro.bench.runner import ExperimentConfig, sweep

        base = ExperimentConfig(
            workload="ysb", duration_ms=25_000.0, cores=4, seed=42
        )
        grid = sweep(base, ["Default", "Klink"], [1, 2])
        assert set(grid) == {
            ("Default", 1), ("Default", 2), ("Klink", 1), ("Klink", 2)
        }
        for res in grid.values():
            assert res.metrics.cycles > 0


class TestDistributedObservability:
    def test_per_node_audit_records(self):
        from repro.obs import AuditLog, OperatorProfiler

        queries = [make_simple_query(f"q{i}") for i in range(4)]
        plan = PhysicalPlan.locality(queries, 2)
        audit = AuditLog()
        profiler = OperatorProfiler()
        engine = DistributedEngine.with_klink(
            queries, plan, cores_per_node=2, cycle_ms=100.0,
            audit=audit, profiler=profiler,
        )
        metrics = engine.run(5_000.0)
        nodes = {r.node for r in audit.rows}
        assert nodes == {0, 1}  # one record per live node per cycle
        assert len(audit) == 2 * metrics.cycles
        for record in audit.rows:
            assert record.policy == f"Klink@node{record.node}"
            assert [d.rank for d in record.decisions] == list(
                range(len(record.decisions))
            )
        assert len(metrics.operator_profiles) == sum(
            len(q.operators) for q in queries
        )

    def test_distributed_audit_is_deterministic(self):
        from repro.obs import AuditLog

        def run():
            queries = [make_simple_query(f"q{i}") for i in range(2)]
            plan = PhysicalPlan.split(queries, 2, segments=2)
            audit = AuditLog()
            DistributedEngine.with_klink(
                queries, plan, cores_per_node=2, cycle_ms=100.0, audit=audit,
            ).run(4_000.0)
            return audit.to_jsonl_str()

        assert run() == run()


class TestDistributedTelemetry:
    def run_sampled(self, *, n_nodes=2, duration=6_000.0):
        from repro.obs import TelemetrySampler

        queries = [
            make_simple_query(f"q{i}", rate_eps=500.0) for i in range(4)
        ]
        plan = PhysicalPlan.locality(queries, n_nodes)
        sampler = TelemetrySampler()
        engine = DistributedEngine.with_klink(
            queries, plan, cores_per_node=2, cycle_ms=100.0,
            telemetry=sampler,
        )
        metrics = engine.run(duration)
        return sampler, metrics

    def test_per_node_cpu_series_merged_into_one_registry(self):
        sampler, _ = self.run_sampled()
        keys = {s.key for s in sampler.registry.series()}
        assert "node_cpu_ms{node=0}" in keys
        assert "node_cpu_ms{node=1}" in keys
        # Cluster-global signals recorded once, not per node.
        assert "cpu_ms" in keys

    def test_node_cpu_sums_to_cluster_total(self):
        import pytest as _pytest

        sampler, metrics = self.run_sampled()
        per_node = sum(
            s.latest()[1]
            for s in sampler.registry.matching("node_cpu_ms")
        )
        total = sampler.registry.get_series("cpu_ms").latest()[1]
        assert per_node == _pytest.approx(total)
        assert total == _pytest.approx(
            metrics.busy_cpu_ms + metrics.scheduler_overhead_ms
        )

    def test_merged_series_byte_deterministic_across_reruns(self):
        from repro.obs import dumps_line

        def rows():
            sampler, _ = self.run_sampled()
            return "\n".join(
                dumps_line(r) for r in sampler.series_rows()
            )

        first = rows()
        assert first and first == rows()

    def test_node_iteration_order_does_not_change_bytes(self):
        from repro.obs import TelemetrySampler, dumps_line

        class FakeEngine:
            """Just enough engine surface for one sampler tick."""

            class _Memory:
                def utilization(self, queries):
                    return 0.0

                def used_bytes(self, queries):
                    return 0.0

            class _Metrics:
                swm_latencies = []
                total_events_processed = 0.0
                busy_cpu_ms = 0.0
                scheduler_overhead_ms = 0.0

            def __init__(self):
                self.metrics = self._Metrics()
                self.memory = self._Memory()
                self.queries = []
                self.scheduler = object()

        def rows(order):
            sampler = TelemetrySampler()
            node_cpu = {node: (float(node + 1), 0.5) for node in order}
            sampler.on_cycle(
                FakeEngine(), 200.0, cpu_used_ms=6.0, overhead_ms=1.5,
                node_cpu=node_cpu,
            )
            return [dumps_line(r) for r in sampler.series_rows()]

        assert rows([0, 1, 2]) == rows([2, 1, 0])

    def test_slack_series_labelled_per_node(self):
        sampler, _ = self.run_sampled()
        slack_keys = {
            s.key for s in sampler.registry.series() if s.name == "slack_ms"
        }
        assert slack_keys  # Klink published finite slacks
        assert all("node=" in key for key in slack_keys)

    def test_run_metrics_populated_from_cluster_run(self):
        import math

        _, metrics = self.run_sampled()
        assert math.isfinite(metrics.watermark_lag_mean_ms)
        assert metrics.deadline_misses >= 0
