"""Edge-case tests across modules: configurations at the boundaries of
the model's assumptions."""

import math

import pytest

from repro.core.baselines import DefaultScheduler, FCFSScheduler
from repro.core.klink import KlinkScheduler
from repro.core.scheduler import SchedulerContext
from repro.spe.engine import Engine
from repro.spe.events import EventBatch, Watermark
from repro.spe.operators import SinkOperator, WindowedAggregate
from repro.spe.windows import TumblingEventTimeWindows
from tests.helpers import make_join_query, make_simple_query


class TestSchedulersWithEmptyInput:
    @pytest.mark.parametrize(
        "scheduler_cls", [DefaultScheduler, FCFSScheduler, KlinkScheduler]
    )
    def test_plan_with_no_queries(self, scheduler_cls):
        ctx = SchedulerContext(now=0.0, cycle_ms=120.0, cores=4, queries=[])
        plan = scheduler_cls().plan(ctx)
        assert plan.allocations == []


class TestWatermarkPeriodVsWindowSize:
    def test_coarse_watermarks_sweep_multiple_deadlines(self):
        # Watermark period 3x the window: each watermark sweeps 3 panes.
        q = make_simple_query(
            window_ms=500.0, watermark_period_ms=1500.0, delay_ms=0.0
        )
        engine = Engine([q], DefaultScheduler(), cores=4, cycle_ms=100.0)
        metrics = engine.run(10_000.0)
        window = q.windowed_operators()[0]
        # ~6 watermarks, ~18 panes fired, but only ~6 SWMs at the sink
        # (one flagged watermark per ingestion).
        assert window.stats.panes_fired >= 12
        assert len(metrics.swm_latencies) <= window.stats.panes_fired

    def test_fine_watermarks_mostly_non_sweeping(self):
        q = make_simple_query(
            window_ms=2000.0, watermark_period_ms=100.0, delay_ms=0.0
        )
        engine = Engine([q], DefaultScheduler(), cores=4, cycle_ms=100.0)
        metrics = engine.run(10_000.0)
        window = q.windowed_operators()[0]
        # Most watermarks are progress-only; pane firings track windows.
        assert window.stats.watermarks_seen > 4 * window.stats.panes_fired


class TestDegenerateSelectivity:
    def test_zero_selectivity_filter_starves_window(self):
        q = make_simple_query(selectivity=0.0)
        engine = Engine([q], DefaultScheduler(), cores=4, cycle_ms=100.0)
        metrics = engine.run(10_000.0)
        window = q.windowed_operators()[0]
        assert window.stats.events_in == 0
        # Watermarks still flow, panes have no deadline-holding events, so
        # no SWM-flagged firings occur (nothing was buffered).
        assert all(lat >= 0 for lat in metrics.swm_latencies)

    def test_window_with_zero_outputs_per_pane(self):
        window = WindowedAggregate(
            "w", TumblingEventTimeWindows(1000.0), 0.01,
            output_events_per_pane=0.0,
        )
        sink = SinkOperator("s")
        window.connect(sink)
        window.inputs[0].push(EventBatch(count=10, t_start=0, t_end=900), 0.0)
        window.inputs[0].push(Watermark(1000.0), 0.0)
        window.step(1e9, 0.0)
        # Pane fires (state released, SWM flagged) but emits no data.
        assert window.stats.panes_fired == 1
        records = [e.record for e in list(sink.inputs[0])]
        assert all(not isinstance(r, EventBatch) for r in records)
        assert any(isinstance(r, Watermark) and r.is_swm for r in records)


class TestExtremeCycles:
    def test_tiny_cycle(self):
        q = make_simple_query(rate_eps=200.0)
        engine = Engine([q], KlinkScheduler(), cores=2, cycle_ms=5.0)
        metrics = engine.run(5_000.0)
        assert metrics.cycles == 1000
        assert len(metrics.swm_latencies) >= 3

    def test_cycle_longer_than_window(self):
        q = make_simple_query(window_ms=500.0, rate_eps=200.0)
        engine = Engine([q], KlinkScheduler(), cores=2, cycle_ms=2_000.0)
        metrics = engine.run(20_000.0)
        # Windows fire in bursts at cycle boundaries but none are lost.
        window = q.windowed_operators()[0]
        assert window.stats.panes_fired >= 8


class TestJoinEdgeCases:
    def test_three_way_join_needs_all_streams(self):
        q = make_join_query(n_inputs=3, delays_ms=(0.0, 0.0, 0.0),
                            window_ms=1000.0, slide_ms=1000.0)
        join = q.join_operators()[0]
        join.inputs[0].push(Watermark(1000.0), 0.0)
        join.inputs[1].push(Watermark(1000.0), 0.0)
        join.step(1e9, 0.0)
        assert join.event_clock == -math.inf  # third stream silent
        join.inputs[2].push(Watermark(1000.0), 0.0)
        join.step(1e9, 0.0)
        assert join.event_clock == 1000.0

    def test_asymmetric_delays_slow_the_join(self):
        fast = make_join_query("fast", delays_ms=(10.0, 10.0))
        slow = make_join_query("slow", delays_ms=(10.0, 400.0))
        lat = {}
        for q in (fast, slow):
            engine = Engine([q], DefaultScheduler(), cores=4, cycle_ms=100.0)
            m = engine.run(15_000.0)
            lat[q.query_id] = m.mean_latency_ms
        # A join is as fresh as its slowest stream's watermark: the
        # 400 ms-lateness stream adds its bound to output latency.
        assert lat["slow"] > lat["fast"] + 300.0


class TestSchedulerReset:
    def test_reset_between_runs_restores_determinism(self):
        def run(scheduler):
            q = make_simple_query(rate_eps=3000.0)
            engine = Engine([q], scheduler, cores=2, cycle_ms=100.0, seed=3)
            return engine.run(10_000.0).swm_latencies

        sched = KlinkScheduler()
        first = run(sched)
        sched.reset()
        second = run(sched)
        assert first == second


class TestMultiQueryIsolation:
    def test_queries_do_not_share_channels(self):
        a, b = make_simple_query("a"), make_simple_query("b")
        ops_a = {id(ch) for op in a.operators for ch in op.inputs}
        ops_b = {id(ch) for op in b.operators for ch in op.inputs}
        assert not ops_a & ops_b

    def test_one_query_overload_does_not_corrupt_other_metrics(self):
        heavy = make_simple_query("heavy", rate_eps=50_000.0, cost_ms=0.2)
        light = make_simple_query("light", rate_eps=100.0)
        engine = Engine([heavy, light], KlinkScheduler(), cores=2,
                        cycle_ms=100.0)
        metrics = engine.run(15_000.0)
        assert "light" in metrics.per_query_swm_latencies
        assert len(metrics.per_query_swm_latencies["light"]) >= 8
