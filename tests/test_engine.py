"""Unit and integration tests for the single-node engine: generation,
ingestion, watermark semantics end-to-end, backpressure/shedding, the
pressure tax, and plan execution modes."""

import math

import pytest

from repro.core.baselines import DefaultScheduler, FCFSScheduler
from repro.core.klink import KlinkScheduler
from repro.spe.engine import Engine
from repro.spe.memory import MemoryConfig
from tests.helpers import make_join_query, make_simple_query


def run_engine(queries, scheduler=None, duration=10_000.0, **kw):
    engine = Engine(queries, scheduler or DefaultScheduler(), cores=4,
                    cycle_ms=100.0, **kw)
    metrics = engine.run(duration)
    return engine, metrics


class TestConstruction:
    def test_rejects_no_queries(self):
        with pytest.raises(ValueError):
            Engine([], DefaultScheduler())

    def test_rejects_bad_cores_or_cycle(self):
        q = make_simple_query()
        with pytest.raises(ValueError):
            Engine([q], DefaultScheduler(), cores=0)
        with pytest.raises(ValueError):
            Engine([q], DefaultScheduler(), cycle_ms=0.0)

    def test_rejects_duplicate_query_ids(self):
        with pytest.raises(ValueError):
            Engine(
                [make_simple_query("same"), make_simple_query("same")],
                DefaultScheduler(),
            )

    def test_rejects_nonpositive_duration(self):
        q = make_simple_query()
        with pytest.raises(ValueError):
            Engine([q], DefaultScheduler()).run(0.0)


class TestGenerationAndIngestion:
    def test_events_are_generated_at_configured_rate(self):
        q = make_simple_query(rate_eps=1000.0)
        _, metrics = run_engine([q], duration=10_000.0)
        # ~10 seconds of 1000 ev/s, minus the generation/ingestion tail.
        assert metrics.total_events_ingested == pytest.approx(10_000, rel=0.05)

    def test_constant_delay_shifts_ingestion(self):
        q = make_simple_query(delay_ms=500.0, rate_eps=100.0)
        engine, metrics = run_engine([q], duration=5_000.0)
        assert metrics.total_events_ingested < 5 * 100  # tail in flight
        assert metrics.total_events_ingested > 3 * 100

    def test_deployment_delays_generation(self):
        q = make_simple_query(deployed_at=5_000.0, rate_eps=1000.0)
        _, metrics = run_engine([q], duration=10_000.0)
        assert metrics.total_events_ingested == pytest.approx(5_000, rel=0.1)

    def test_burst_state_machine_preserves_mean_rate(self):
        # The ON/OFF modulation keeps the long-run mean at rate_eps; with
        # ~10 s burst cycles this needs long horizons and several seeds to
        # average out (a single 60 s run can realize a duty of 0.2-0.4).
        totals = []
        for seed in range(4):
            q = make_simple_query(f"b{seed}", rate_eps=1000.0,
                                  burst_factor=3.0, seed=seed)
            _, metrics = run_engine([q], duration=240_000.0)
            totals.append(metrics.total_events_ingested)
        mean_total = sum(totals) / len(totals)
        assert mean_total == pytest.approx(240_000, rel=0.1)


class TestEndToEndWindowing:
    def test_windows_fire_and_latency_recorded(self):
        q = make_simple_query(window_ms=1000.0, watermark_period_ms=500.0,
                              delay_ms=50.0)
        _, metrics = run_engine([q], duration=10_000.0)
        # ~10 windows fire over 10 s.
        assert len(metrics.swm_latencies) >= 7
        assert all(lat > 0 for lat in metrics.swm_latencies)

    def test_latency_includes_delay_and_lateness(self):
        q = make_simple_query(delay_ms=200.0, window_ms=1000.0)
        _, metrics = run_engine([q], duration=10_000.0)
        # SWM event-time lags its generation by the lateness (=200 ms) and
        # its arrival by the network delay (200 ms) plus scheduling.
        assert min(metrics.swm_latencies) >= 400.0

    def test_latency_markers_measured(self):
        q = make_simple_query()
        _, metrics = run_engine([q], duration=5_000.0)
        # one marker per 200 ms
        assert len(metrics.marker_latencies) >= 20

    def test_slowdown_derived_from_latency(self):
        q = make_simple_query()
        _, metrics = run_engine([q], duration=5_000.0)
        ideal = q.pipeline_cost_per_event_ms()
        assert metrics.slowdowns
        assert metrics.slowdowns[0] == pytest.approx(
            metrics.swm_latencies[0] / ideal
        )

    def test_join_query_runs_end_to_end(self):
        q = make_join_query(window_ms=1000.0, slide_ms=1000.0)
        _, metrics = run_engine([q], duration=10_000.0)
        assert len(metrics.swm_latencies) >= 5

    def test_no_late_drops_with_adequate_lateness(self):
        q = make_simple_query(delay_ms=100.0)
        _, metrics = run_engine([q], duration=10_000.0)
        assert metrics.late_events_dropped == 0.0


class TestBackpressureAndShedding:
    def test_backpressure_sheds_events(self):
        # Tiny memory: ingestion throttles, events are shed, memory bounded.
        q = make_simple_query(rate_eps=50_000.0, cost_ms=1.0)
        _, metrics = run_engine(
            [q],
            duration=10_000.0,
            memory=MemoryConfig(capacity_bytes=50_000.0,
                                backpressure_threshold=0.9),
        )
        assert metrics.backpressure_cycles > 0
        assert metrics.events_shed > 0

    def test_watermarks_flow_under_backpressure(self):
        q = make_simple_query(rate_eps=50_000.0, cost_ms=1.0)
        _, metrics = run_engine(
            [q],
            duration=10_000.0,
            memory=MemoryConfig(capacity_bytes=50_000.0,
                                backpressure_threshold=0.9),
        )
        # Windows still fire: control records are never shed.
        assert len(metrics.swm_latencies) > 0

    def test_pressure_tax_reduces_effective_cpu(self):
        config = MemoryConfig(
            capacity_bytes=100_000.0,
            pressure_tax_start=0.0,
            pressure_tax_full=0.5,
            pressure_tax_max=0.5,
        )
        q_heavy = make_simple_query(rate_eps=20_000.0, cost_ms=0.2)
        _, taxed = run_engine([q_heavy], duration=10_000.0, memory=config)
        q_heavy2 = make_simple_query(rate_eps=20_000.0, cost_ms=0.2)
        _, untaxed = run_engine([q_heavy2], duration=10_000.0)
        assert taxed.total_events_processed <= untaxed.total_events_processed


class TestPlanExecution:
    def test_share_and_priority_equivalent_when_underloaded(self):
        qa = make_simple_query("qa", rate_eps=500.0)
        _, share = run_engine([qa], DefaultScheduler(), duration=10_000.0)
        qb = make_simple_query("qb", rate_eps=500.0)
        _, prio = run_engine([qb], FCFSScheduler(), duration=10_000.0)
        assert share.mean_latency_ms == pytest.approx(
            prio.mean_latency_ms, rel=0.15
        )

    def test_cpu_fraction_bounded(self):
        q = make_simple_query(rate_eps=100.0)
        _, metrics = run_engine([q], duration=5_000.0)
        assert all(0.0 <= s.cpu_fraction <= 1.0 + 1e-9 for s in metrics.samples)

    def test_scheduler_overhead_accumulates(self):
        q = make_simple_query()
        _, metrics = run_engine([q], KlinkScheduler(), duration=5_000.0)
        assert metrics.scheduler_overhead_ms > 0

    def test_cycles_counted(self):
        q = make_simple_query()
        _, metrics = run_engine([q], duration=5_000.0)
        assert metrics.cycles == 50  # 5000 ms / 100 ms


class TestDeterminism:
    def test_same_seed_same_results(self):
        def run(seed):
            q = make_simple_query()
            engine = Engine([q], DefaultScheduler(), cores=4,
                            cycle_ms=100.0, seed=seed)
            return engine.run(5_000.0)

        a, b = run(7), run(7)
        assert a.swm_latencies == b.swm_latencies
        assert a.total_events_processed == b.total_events_processed
