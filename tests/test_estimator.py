"""Unit tests for the SWM ingestion estimator (Sec. 3.1, Eqs. 2-6)."""

import math

import pytest

from repro.core.estimator import (
    SwmEstimate,
    SwmIngestionEstimator,
    Z_SCORES,
    z_for_confidence,
)
from repro.net.delays import ConstantDelay, UniformDelay
from repro.spe.operators import MapOperator
from repro.spe.query import SourceBinding, SourceSpec
from repro.spe.windows import TumblingEventTimeWindows


def make_binding(delay_model=None, window_ms=1000.0, period=500.0, lateness=None):
    delay_model = delay_model or ConstantDelay(100.0)
    spec = SourceSpec(
        name="s",
        rate_eps=1000.0,
        watermark_period_ms=period,
        lateness_ms=delay_model.bound if lateness is None else lateness,
        delay_model=delay_model,
    )
    op = MapOperator("probe", 0.0)
    binding = SourceBinding(spec, op)
    binding.bind_progress(TumblingEventTimeWindows(window_ms))
    return binding


class TestZScores:
    def test_paper_confidence_values_tabulated(self):
        for f in (100.0, 99.0, 95.0, 90.0, 67.0):
            assert f in Z_SCORES

    def test_algorithm1_uses_two_sigma_for_95(self):
        assert z_for_confidence(95.0) == 2.0

    def test_interpolated_confidence(self):
        # Non-tabulated values fall back to the inverse normal CDF.
        z = z_for_confidence(80.0)
        assert 1.0 < z < 1.645

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            z_for_confidence(0.0)
        with pytest.raises(ValueError):
            z_for_confidence(101.0)


class TestSwmGenerationTime:
    def test_first_grid_point_covering_deadline(self):
        # deadline 1000, lateness 100 -> target 1100 -> grid 500 -> 1500
        g = SwmIngestionEstimator.swm_generation_time(1000.0, 500.0, 100.0)
        assert g == 1500.0

    def test_exact_grid_point(self):
        g = SwmIngestionEstimator.swm_generation_time(900.0, 500.0, 100.0)
        assert g == 1000.0

    def test_phase_shifts_grid(self):
        g = SwmIngestionEstimator.swm_generation_time(
            1000.0, 500.0, 100.0, phase=200.0
        )
        assert g == 1200.0
        assert (g - 200.0) % 500.0 == 0.0

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            SwmIngestionEstimator.swm_generation_time(0.0, 0.0, 0.0)


class TestDelayMoments:
    def test_constant_delay_yields_zero_variance_floor(self):
        binding = make_binding(ConstantDelay(100.0))
        progress = binding.progress
        for i in range(5):
            progress.observe_delay(100.0)
            progress.observe_watermark((i + 1) * 1000.0, (i + 1) * 1000.0 + 100)
        est = SwmIngestionEstimator()
        mu, chi = est.delay_moments(progress)
        assert mu == pytest.approx(100.0)
        assert est.delay_std(progress) == 1.0  # floored, not zero

    def test_variance_matches_population(self):
        binding = make_binding(UniformDelay(0.0, 200.0, seed=0))
        progress = binding.progress
        model = binding.spec.delay_model
        for i in range(200):
            for _ in range(30):
                progress.observe_delay(model.sample())
            progress.observe_watermark((i + 1) * 1000.0, (i + 1) * 1000.0 + 100)
        est = SwmIngestionEstimator()
        # population std of U(0,200) = 200/sqrt(12) ~ 57.7
        assert est.delay_std(progress) == pytest.approx(57.7, rel=0.1)

    def test_history_limits_window(self):
        binding = make_binding()
        progress = binding.progress
        # 10 epochs of delay 100, then 10 of delay 300
        for i in range(20):
            progress.observe_delay(100.0 if i < 10 else 300.0)
            progress.observe_watermark((i + 1) * 1000.0, (i + 1) * 1000.0)
        short = SwmIngestionEstimator(history=5)
        mu_short, _ = short.delay_moments(progress)
        long = SwmIngestionEstimator(history=400)
        mu_long, _ = long.delay_moments(progress)
        # The short window tracks the recent regime much more closely;
        # both include the in-flight epoch's fallback (full-history mean),
        # which pulls the short estimate slightly below 300.
        assert mu_short > 270.0
        assert mu_short > mu_long
        assert 100.0 < mu_long < 300.0

    def test_rejects_empty_history_config(self):
        with pytest.raises(ValueError):
            SwmIngestionEstimator(history=0)


class TestEstimate:
    def test_estimate_structure(self):
        binding = make_binding(ConstantDelay(100.0))
        est = SwmIngestionEstimator(confidence=95.0)
        e = est.estimate(binding)
        assert e is not None
        assert e.deadline == 1000.0
        # generation: deadline 1000 + lateness 100 -> grid 500 -> 1500
        assert e.swm_generation == 1500.0
        assert e.t_min <= e.mean <= e.t_max
        assert e.t_max - e.t_min == pytest.approx(2 * est.z * e.std)

    def test_estimate_mean_adds_expected_delay(self):
        binding = make_binding(ConstantDelay(100.0))
        progress = binding.progress
        progress.observe_delay(100.0)
        e = SwmIngestionEstimator().estimate(binding)
        assert e.mean == pytest.approx(1600.0)  # generation + mu

    def test_no_window_downstream_returns_none(self):
        binding = make_binding()
        binding.bind_progress(None)
        assert SwmIngestionEstimator().estimate(binding) is None

    def test_explicit_deadline_override(self):
        binding = make_binding(ConstantDelay(0.0))
        e = SwmIngestionEstimator().estimate(binding, deadline=5000.0)
        assert e.deadline == 5000.0
        assert e.swm_generation >= 5000.0

    def test_contains(self):
        e = SwmEstimate(
            mean=100.0, std=10.0, t_min=80.0, t_max=120.0,
            deadline=0.0, swm_generation=0.0,
        )
        assert e.contains(100.0)
        assert e.contains(80.0) and e.contains(120.0)
        assert not e.contains(79.9)
        assert not e.contains(121.0)

    def test_higher_confidence_widens_interval(self):
        binding = make_binding(UniformDelay(0, 200, seed=1))
        progress = binding.progress
        model = binding.spec.delay_model
        for i in range(50):
            progress.observe_delay(model.sample())
            progress.observe_watermark((i + 1) * 1000.0, (i + 1) * 1000.0)
        e90 = SwmIngestionEstimator(confidence=90.0).estimate(binding)
        e99 = SwmIngestionEstimator(confidence=99.0).estimate(binding)
        assert (e99.t_max - e99.t_min) > (e90.t_max - e90.t_min)


class TestColdStart:
    """Estimator contract before the first observation (the fallback
    replaced the old meaningless all-zero moments)."""

    def test_delay_moments_fall_back_to_watermark_period(self):
        binding = make_binding(period=500.0)
        est = SwmIngestionEstimator()
        assert not binding.progress.has_observations
        mu, chi = est.delay_moments(binding.progress)
        assert mu == 500.0
        assert chi == 500.0 * 500.0  # zero spread around the prior

    def test_cold_start_std_is_floored(self):
        binding = make_binding(period=500.0)
        est = SwmIngestionEstimator()
        assert est.delay_std(binding.progress) == 1.0  # _MIN_STD_MS

    def test_first_observation_replaces_fallback(self):
        binding = make_binding()
        est = SwmIngestionEstimator()
        binding.progress.observe_delay(120.0)
        assert binding.progress.has_observations
        mu, _ = est.delay_moments(binding.progress)
        assert mu == pytest.approx(120.0)

    def test_finalized_epoch_counts_as_observation(self):
        binding = make_binding()
        binding.progress.observe_delay(80.0)
        binding.progress.observe_watermark(1000.0, 1100.0)
        assert binding.progress.has_observations
        mu, _ = SwmIngestionEstimator().delay_moments(binding.progress)
        assert mu == pytest.approx(80.0)

    def test_cold_start_estimate_is_finite(self):
        # The end-to-end estimate built on the fallback must be usable:
        # finite moments, non-degenerate interval.
        binding = make_binding(period=500.0)
        est = SwmIngestionEstimator()
        e = est.estimate(binding)
        assert e is not None
        assert math.isfinite(e.mean) and math.isfinite(e.std)
        assert e.t_max > e.t_min
