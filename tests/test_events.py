"""Unit tests for stream records (batches, watermarks, markers)."""

import pytest

from repro.spe.events import (
    EventBatch,
    LatencyMarker,
    Watermark,
    is_control,
    is_data,
)


class TestEventBatch:
    def test_bytes_scale_with_count(self):
        batch = EventBatch(count=10, t_start=0, t_end=100, bytes_per_event=50)
        assert batch.bytes == 500

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            EventBatch(count=-1, t_start=0, t_end=1)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            EventBatch(count=1, t_start=10, t_end=5)

    def test_zero_length_interval_is_allowed(self):
        batch = EventBatch(count=1, t_start=10, t_end=10)
        assert batch.t_start == batch.t_end

    def test_split_fraction_scales_count_only(self):
        batch = EventBatch(count=100, t_start=0, t_end=50, delay=7.0)
        head = batch.split_fraction(0.25)
        assert head.count == 25
        assert head.t_start == 0 and head.t_end == 50
        assert head.delay == 7.0

    def test_split_fraction_full_returns_equal_batch(self):
        batch = EventBatch(count=100, t_start=0, t_end=50)
        assert batch.split_fraction(1.0).count == 100

    def test_split_fraction_rejects_out_of_range(self):
        batch = EventBatch(count=10, t_start=0, t_end=1)
        with pytest.raises(ValueError):
            batch.split_fraction(0.0)
        with pytest.raises(ValueError):
            batch.split_fraction(1.5)

    def test_fractional_counts_supported_mid_pipeline(self):
        batch = EventBatch(count=0.5, t_start=0, t_end=1)
        assert batch.count == 0.5


class TestWatermark:
    def test_defaults(self):
        wm = Watermark(100.0)
        assert wm.source_id == 0
        assert wm.is_swm is False

    def test_is_frozen(self):
        wm = Watermark(100.0)
        with pytest.raises(Exception):
            wm.timestamp = 200.0

    def test_swm_flag_carried(self):
        assert Watermark(5.0, is_swm=True).is_swm


class TestLatencyMarker:
    def test_ids_are_unique(self):
        a, b = LatencyMarker(created_at=0.0), LatencyMarker(created_at=0.0)
        assert a.marker_id != b.marker_id


class TestKindPredicates:
    def test_batch_is_data(self):
        assert is_data(EventBatch(count=1, t_start=0, t_end=1))
        assert not is_control(EventBatch(count=1, t_start=0, t_end=1))

    def test_watermark_and_marker_are_control(self):
        assert is_control(Watermark(0.0))
        assert is_control(LatencyMarker(created_at=0.0))
        assert not is_data(Watermark(0.0))
