"""Tests for the deterministic fault-injection layer (repro.faults.plan).

Fault activation is a pure function of (identity, time), so every
behavioral effect here is asserted against engine runs with fixed seeds:
source stalls inflate observed delays, watermark stragglers push SWM
ingestion later, drops suppress watermarks entirely, slowdowns stretch
operator costs, memory spikes raise utilization, and node failures gate
the whole (single-node) engine.
"""

import math

import pytest

from repro.faults import (
    FaultPlan,
    InvariantMonitor,
    MemoryPressureSpike,
    NodeFailure,
    OperatorSlowdown,
    SourceStall,
    WatermarkDrop,
    WatermarkStraggler,
)
from repro.core.baselines import FCFSScheduler
from repro.spe.engine import Engine

from tests.helpers import make_simple_query


def run_engine(faults=None, *, duration_ms=10_000.0, monitor=None, seed=0):
    query = make_simple_query("q0", rate_eps=500.0, delay_ms=50.0, seed=seed)
    engine = Engine(
        [query],
        FCFSScheduler(),
        cores=2,
        cycle_ms=100.0,
        seed=seed,
        faults=faults,
        invariants=monitor,
    )
    metrics = engine.run(duration_ms)
    return engine, metrics


class TestFaultWindows:
    def test_active_is_half_open(self):
        f = SourceStall(1000.0, 2000.0)
        assert not f.active(999.9)
        assert f.active(1000.0)
        assert f.active(1999.9)
        assert not f.active(2000.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SourceStall(2000.0, 1000.0)

    def test_query_filter(self):
        f = WatermarkStraggler(0.0, 1000.0, query_ids=["q1"])
        plan = FaultPlan([f])
        assert plan.watermark_extra_delay("q1", 500.0) > 0.0
        assert plan.watermark_extra_delay("q0", 500.0) == 0.0

    def test_none_matches_all_queries(self):
        plan = FaultPlan([WatermarkDrop(0.0, 1000.0)])
        assert plan.drops_watermark("anything", 10.0)
        assert not plan.drops_watermark("anything", 1000.0)


class TestFaultPlanQueries:
    def test_source_hold_until_takes_max(self):
        plan = FaultPlan([
            SourceStall(0.0, 1000.0),
            SourceStall(500.0, 3000.0),
        ])
        assert plan.source_hold_until("q", 600.0) == 3000.0
        assert plan.source_hold_until("q", 1500.0) == 3000.0
        assert plan.source_hold_until("q", 3000.0) == 0.0

    def test_slowdown_factors_compound(self):
        plan = FaultPlan([
            OperatorSlowdown(0.0, 1000.0, factor=2.0),
            OperatorSlowdown(0.0, 1000.0, factor=3.0),
        ])
        assert plan.slowdown_factor("q", "op", 500.0) == pytest.approx(6.0)
        assert plan.slowdown_factor("q", "op", 2000.0) == 1.0

    def test_operator_name_filter(self):
        plan = FaultPlan(
            [OperatorSlowdown(0.0, 1000.0, factor=4.0, operator_names=["q.window"])]
        )
        assert plan.slowdown_factor("q", "q.window", 10.0) == pytest.approx(4.0)
        assert plan.slowdown_factor("q", "q.filter", 10.0) == 1.0

    def test_memory_spikes_sum(self):
        plan = FaultPlan([
            MemoryPressureSpike(0.0, 1000.0, extra_bytes=100.0),
            MemoryPressureSpike(500.0, 2000.0, extra_bytes=50.0),
        ])
        assert plan.extra_memory_bytes(700.0) == pytest.approx(150.0)
        assert plan.extra_memory_bytes(1500.0) == pytest.approx(50.0)

    def test_node_down(self):
        plan = FaultPlan([NodeFailure(1000.0, 2000.0, node=1)])
        assert plan.node_down(1, 1500.0)
        assert not plan.node_down(0, 1500.0)
        assert not plan.node_down(1, 2500.0)

    def test_end_ms_and_active_at(self):
        plan = FaultPlan([
            SourceStall(0.0, 1000.0),
            WatermarkDrop(4000.0, 5000.0),
        ])
        assert plan.end_ms() == 5000.0
        assert len(plan.active_at(500.0)) == 1
        assert plan.active_at(3000.0) == []
        assert len(plan) == 2

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan([SourceStall(0.0, 1.0), NodeFailure(2.0, 3.0, node=4)])
        text = plan.describe()
        assert "SourceStall" in text
        assert "node=4" in text


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(42, 60_000.0, query_ids=["q0", "q1"])
        b = FaultPlan.random(42, 60_000.0, query_ids=["q0", "q1"])
        assert a.describe() == b.describe()

    def test_different_seed_different_plan(self):
        a = FaultPlan.random(1, 60_000.0)
        b = FaultPlan.random(2, 60_000.0)
        assert a.describe() != b.describe()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.random(-1, 1000.0)

    def test_episodes_within_duration(self):
        plan = FaultPlan.random(7, 30_000.0, episodes=10)
        assert len(plan) == 10
        for fault in plan:
            assert 0.0 <= fault.start_ms < fault.end_ms <= 30_000.0


class TestBehavioralEffects:
    def test_source_stall_inflates_latency(self):
        stall = FaultPlan([SourceStall(2000.0, 6000.0)])
        _, clean = run_engine(None)
        _, faulty = run_engine(stall)
        assert faulty.fault_cycles > 0
        assert faulty.mean_latency_ms > clean.mean_latency_ms

    def test_watermark_drop_counted(self):
        drops = FaultPlan([WatermarkDrop(0.0, 5000.0)])
        engine, metrics = run_engine(drops)
        assert metrics.watermarks_dropped_by_faults > 0
        # Fewer watermarks reach the pipeline than in a clean run.
        clean_engine, _ = run_engine(None)
        faulty_wm = engine.queries[0].bindings[0].watermarks_ingested
        clean_wm = clean_engine.queries[0].bindings[0].watermarks_ingested
        assert faulty_wm < clean_wm

    def test_straggler_delays_window_results(self):
        straggler = FaultPlan([WatermarkStraggler(0.0, 8000.0, extra_delay_ms=2000.0)])
        _, clean = run_engine(None)
        _, faulty = run_engine(straggler)
        assert faulty.mean_latency_ms > clean.mean_latency_ms

    def test_slowdown_burns_more_cpu(self):
        slow = FaultPlan([OperatorSlowdown(0.0, 10_000.0, factor=8.0)])
        _, clean = run_engine(None)
        _, faulty = run_engine(slow)
        assert faulty.busy_cpu_ms > clean.busy_cpu_ms * 1.5

    def test_memory_spike_visible_in_model(self):
        spike = FaultPlan(
            [MemoryPressureSpike(0.0, 10_000.0, extra_bytes=512 * 1024 * 1024)]
        )
        engine, metrics = run_engine(spike)
        # external_bytes is reset past the fault window; mid-run samples
        # carry the spike.
        assert max(s.memory_bytes for s in metrics.samples) >= 512 * 1024 * 1024

    def test_node_failure_pauses_single_node_engine(self):
        outage = FaultPlan([NodeFailure(2000.0, 6000.0, node=0)])
        monitor = InvariantMonitor()
        engine, metrics = run_engine(outage, monitor=monitor)
        assert metrics.fault_cycles >= 40  # 4 s / 100 ms cycles
        assert monitor.ok, monitor.report()
        # The engine still drains after recovery.
        assert metrics.total_events_processed > 0

    def test_faulty_run_keeps_invariants(self):
        plan = FaultPlan.random(11, 10_000.0, query_ids=["q0"])
        monitor = InvariantMonitor()
        _, metrics = run_engine(plan, monitor=monitor)
        assert monitor.ok, monitor.report()
        assert metrics.invariant_violations == 0


class TestDistributedFaults:
    def make_cluster(self, faults, monitor, n_queries=4):
        from repro.distributed import DistributedEngine, PhysicalPlan

        queries = [
            make_simple_query(f"q{i}", rate_eps=300.0, delay_ms=20.0, seed=i)
            for i in range(n_queries)
        ]
        plan = PhysicalPlan.locality(queries, 2)
        engine = DistributedEngine.with_klink(
            queries, plan, faults=faults, invariants=monitor
        )
        return engine, queries, plan

    def test_node_failure_blocks_only_its_queries(self):
        # The outage outlives the run: its queries never ingest anything.
        outage = FaultPlan([NodeFailure(0.0, 60_000.0, node=1)])
        monitor = InvariantMonitor()
        engine, queries, plan = self.make_cluster(outage, monitor)
        engine.run(10_000.0)
        for query in queries:
            ingested = sum(b.events_ingested for b in query.bindings)
            if plan.source_node(query) == 1:
                assert ingested == 0.0, query.query_id
            else:
                assert ingested > 0.0, query.query_id
        assert monitor.ok, monitor.report()

    def test_failed_node_recovers_and_drains(self):
        outage = FaultPlan([NodeFailure(2_000.0, 5_000.0, node=1)])
        monitor = InvariantMonitor()
        engine, queries, plan = self.make_cluster(outage, monitor)
        metrics = engine.run(20_000.0)
        # Every query made progress once the node came back.
        for query in queries:
            assert sum(b.events_ingested for b in query.bindings) > 0.0
        assert metrics.fault_cycles > 0
        assert monitor.ok, monitor.report()

    def test_random_plan_on_cluster_keeps_invariants(self):
        plan = FaultPlan.random(
            3, 12_000.0, query_ids=[f"q{i}" for i in range(4)], n_nodes=2
        )
        monitor = InvariantMonitor()
        engine, _, _ = self.make_cluster(plan, monitor)
        engine.run(12_000.0)
        assert monitor.ok, monitor.report()
