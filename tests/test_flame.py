"""Tests for the Chrome trace-event (flame chart) exporter
(repro.obs.flame)."""

import json

import pytest

from repro.core.klink import KlinkScheduler
from repro.obs import (
    Trace,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.flame import (
    PID_LINEAGE,
    PID_OPERATORS,
    PID_SCHEDULER,
    PID_TELEMETRY,
    trace_from_tracer,
)
from repro.obs.schema import SchemaError
from repro.spe.engine import Engine
from repro.spe.tracing import CycleTracer
from tests.helpers import make_simple_query


def sample_trace():
    return Trace(
        meta={"workload": "ysb", "scheduler": "Klink", "cycle_ms": 100.0},
        cycles=[
            {
                "time": 100.0, "cycle": 0, "node": 0, "mode": "priority",
                "backpressured": False, "memory_utilization": 0.1,
                "cpu_used_ms": 50.0, "overhead_ms": 0.5,
                "decisions": [{"query_id": "q0", "reason": "slack-order"}],
            },
            {
                "time": 200.0, "cycle": 1, "node": 1, "mode": "memory",
                "backpressured": True, "memory_utilization": 0.9,
                "cpu_used_ms": 80.0, "overhead_ms": 0.5, "decisions": [],
            },
        ],
        operators=[
            {"query_id": "q0", "name": "q0.filter", "cpu_ms": 30.0,
             "events_in": 100.0, "events_out": 50.0},
            {"query_id": "q0", "name": "q0.window", "cpu_ms": 20.0,
             "events_in": 50.0, "events_out": 10.0},
            {"query_id": "q1", "name": "q1.filter", "cpu_ms": 5.0,
             "events_in": 10.0, "events_out": 5.0},
        ],
        series=[
            {"name": "queue_depth", "labels": {"query": "q0"},
             "kind": "gauge", "period_ms": 200.0,
             "points": [[200.0, 3.0], [400.0, 4.0]], "dropped": 0},
        ],
        alerts=[
            {"rule": "slo", "series": "latency_recent_p99_ms",
             "kind": "threshold", "start": 150.0, "end": 200.0,
             "value": 2000.0},
        ],
        summary={"mean_latency_ms": 10.0},
    )


class TestChromeTraceEvents:
    def test_payload_shape(self):
        payload = chrome_trace_events(sample_trace())
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["workload"] == "ysb"
        validate_chrome_trace(payload)

    def test_cycle_spans_scaled_to_microseconds(self):
        events = chrome_trace_events(sample_trace())["traceEvents"]
        cycles = [e for e in events if e.get("cat") == "scheduler"]
        assert len(cycles) == 2
        first = cycles[0]
        assert first["ph"] == "X"
        assert first["name"] == "cycle:priority"
        assert first["ts"] == 0.0 and first["dur"] == 100_000.0  # 100ms in µs
        assert first["pid"] == PID_SCHEDULER
        assert first["args"]["head_query"] == "q0"
        # second cycle lands on its node's track
        assert cycles[1]["tid"] == 1 and cycles[1]["name"] == "cycle:memory"

    def test_operator_spans_stack_per_query(self):
        events = chrome_trace_events(sample_trace())["traceEvents"]
        ops = [e for e in events if e.get("cat") == "operator"]
        assert [e["name"] for e in ops] == ["q0.filter", "q0.window", "q1.filter"]
        q0 = [e for e in ops if e["tid"] == 0]
        # back-to-back spans: second starts where the first ends
        assert q0[1]["ts"] == q0[0]["ts"] + q0[0]["dur"]
        assert all(e["pid"] == PID_OPERATORS for e in ops)

    def test_alert_instants_and_series_counters(self):
        events = chrome_trace_events(sample_trace())["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "alert:slo"
        assert instants[0]["ts"] == 150_000.0
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 2  # one per sampled point
        assert counters[0]["name"] == "queue_depth{query=q0}"
        assert all(e["pid"] == PID_TELEMETRY for e in counters)

    def test_include_series_false_drops_counters(self):
        events = chrome_trace_events(
            sample_trace(), include_series=False
        )["traceEvents"]
        assert not [e for e in events if e["ph"] == "C"]


class TestValidator:
    def test_rejects_non_list_events(self):
        with pytest.raises(SchemaError, match="traceEvents"):
            validate_chrome_trace({"traceEvents": "nope"})

    def test_rejects_missing_name(self):
        bad = {"traceEvents": [{"ph": "X", "ts": 0, "pid": 0, "tid": 0}]}
        with pytest.raises(SchemaError, match=r"\[0\]\.name"):
            validate_chrome_trace(bad)

    def test_rejects_bool_timestamps(self):
        bad = {"traceEvents": [
            {"name": "e", "ph": "i", "ts": True, "pid": 0, "tid": 0}
        ]}
        with pytest.raises(SchemaError, match="ts"):
            validate_chrome_trace(bad)

    def test_rejects_negative_timestamp(self):
        bad = {"traceEvents": [
            {"name": "e", "ph": "i", "ts": -1.0, "pid": 0, "tid": 0}
        ]}
        with pytest.raises(SchemaError, match="negative"):
            validate_chrome_trace(bad)

    def test_complete_spans_need_duration(self):
        bad = {"traceEvents": [
            {"name": "e", "ph": "X", "ts": 0.0, "pid": 0, "tid": 0}
        ]}
        with pytest.raises(SchemaError, match="dur"):
            validate_chrome_trace(bad)


class TestWriteChromeTrace:
    def test_written_file_is_valid_json(self, tmp_path):
        path = tmp_path / "flame.json"
        payload = write_chrome_trace(str(path), sample_trace())
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        validate_chrome_trace(on_disk)

    def test_deterministic_bytes(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(str(a), sample_trace())
        write_chrome_trace(str(b), sample_trace())
        assert a.read_bytes() == b.read_bytes()


class TestTracerExport:
    def test_cycle_tracer_to_chrome(self, tmp_path):
        tracer = CycleTracer()
        queries = [make_simple_query("q0", rate_eps=500.0)]
        engine = Engine(queries, KlinkScheduler(), cores=2, cycle_ms=100.0,
                        seed=1, tracer=tracer)
        metrics = engine.run(3_000.0)
        path = tmp_path / "flame.json"
        tracer.to_chrome(str(path), cycle_ms=100.0)
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == metrics.cycles

    def test_trace_from_tracer_maps_plan_mode(self):
        trace = trace_from_tracer(
            [{"time": 100.0, "plan_mode": "memory", "cpu_used_ms": 1.0}],
            cycle_ms=100.0,
        )
        assert trace.cycles[0]["mode"] == "memory"
        assert trace.meta["cycle_ms"] == 100.0


def lineage_rows():
    return [
        {
            "rid": "q0:0:100.0", "query_id": "q0", "source_id": 0,
            "t_end": 100.0, "status": "delivered", "completed_at": 400.0,
            "end_to_end_ms": 300.0,
            "components": {"network": 50.0, "queue": 100.0, "execute": 0.0,
                           "window": 150.0, "emit": 0.0},
            "spans": [
                {"kind": "network", "op": None, "start": 100.0, "end": 150.0},
                {"kind": "queue", "op": "q0.agg", "start": 150.0, "end": 250.0},
                {"kind": "execute", "op": "q0.agg", "start": 250.0, "end": 250.0},
                {"kind": "window", "op": "q0.agg", "start": 250.0, "end": 400.0},
            ],
        },
    ]


class TestLineageWaterfalls:
    def test_lineage_spans_export_and_validate(self):
        trace = sample_trace()
        trace.lineage = lineage_rows()
        payload = chrome_trace_events(trace)
        validate_chrome_trace(payload)
        spans = [e for e in payload["traceEvents"] if e.get("cat") == "lineage"]
        assert [e["name"] for e in spans] == [
            "network", "queue", "execute", "window",
        ]
        assert all(e["pid"] == PID_LINEAGE for e in spans)
        assert all(e["args"]["rid"] == "q0:0:100.0" for e in spans)
        # back-to-back stacking: each span starts where the previous ended
        for prev, nxt in zip(spans, spans[1:]):
            assert prev["ts"] + prev["dur"] == nxt["ts"]
        names = [
            e for e in payload["traceEvents"]
            if e["ph"] == "M" and e["pid"] == PID_LINEAGE
        ]
        assert any(e["args"]["name"] == "lineage waterfalls" for e in names)
        assert any("[delivered]" in str(e["args"].get("name")) for e in names)

    def test_untraced_run_has_no_lineage_process(self):
        payload = chrome_trace_events(sample_trace())
        assert not any(
            e.get("pid") == PID_LINEAGE for e in payload["traceEvents"]
        )

    def test_validator_rejects_wrong_phase(self):
        bad = {"traceEvents": [
            {"name": "queue", "cat": "lineage", "ph": "i", "ts": 0.0,
             "pid": PID_LINEAGE, "tid": 0, "args": {"rid": "r"}}
        ]}
        with pytest.raises(SchemaError, match="X spans"):
            validate_chrome_trace(bad)

    def test_validator_rejects_wrong_pid(self):
        bad = {"traceEvents": [
            {"name": "queue", "cat": "lineage", "ph": "X", "ts": 0.0,
             "dur": 1.0, "pid": 0, "tid": 0, "args": {"rid": "r"}}
        ]}
        with pytest.raises(SchemaError, match="pid"):
            validate_chrome_trace(bad)

    def test_validator_rejects_unknown_span_kind(self):
        bad = {"traceEvents": [
            {"name": "gc-pause", "cat": "lineage", "ph": "X", "ts": 0.0,
             "dur": 1.0, "pid": PID_LINEAGE, "tid": 0, "args": {"rid": "r"}}
        ]}
        with pytest.raises(SchemaError, match="span kind"):
            validate_chrome_trace(bad)

    def test_validator_requires_rid_argument(self):
        bad = {"traceEvents": [
            {"name": "queue", "cat": "lineage", "ph": "X", "ts": 0.0,
             "dur": 1.0, "pid": PID_LINEAGE, "tid": 0, "args": {}}
        ]}
        with pytest.raises(SchemaError, match="rid"):
            validate_chrome_trace(bad)
