"""Integration tests: full engine runs exercising the paper's headline
behaviours end-to-end on small configurations (kept fast for CI)."""

import pytest

from repro.core.baselines import DefaultScheduler, StreamBoxScheduler
from repro.core.klink import KlinkScheduler
from repro.spe.engine import Engine
from repro.spe.memory import GIB, MemoryConfig
from repro.workloads import WorkloadParams, build_queries
from tests.helpers import make_join_query, make_simple_query


def run(queries, scheduler, duration=30_000.0, memory_gb=None, cores=24):
    memory = (
        MemoryConfig(capacity_bytes=memory_gb * GIB) if memory_gb else None
    )
    engine = Engine(queries, scheduler, cores=cores, cycle_ms=120.0,
                    memory=memory)
    return engine.run(duration)


class TestWorkloadsEndToEnd:
    @pytest.mark.parametrize("workload", ["ysb", "lrb", "nyt"])
    def test_each_benchmark_produces_output(self, workload):
        queries = build_queries(workload, 4, WorkloadParams(seed=0))
        metrics = run(queries, DefaultScheduler())
        assert len(metrics.swm_latencies) > 0
        assert metrics.total_events_processed > 0
        assert all(q.sink.events_delivered > 0 for q in queries)

    def test_all_queries_make_progress(self):
        queries = build_queries("ysb", 6, WorkloadParams(seed=0))
        metrics = run(queries, KlinkScheduler())
        for q in queries:
            assert q.sink.swm_latencies, q.query_id

    def test_zipf_delays_run(self):
        queries = build_queries("ysb", 3, WorkloadParams(seed=0, delay="zipf"))
        metrics = run(queries, KlinkScheduler())
        assert len(metrics.swm_latencies) > 0


class TestSchedulingBehaviour:
    def test_klink_beats_default_under_contention(self):
        """The headline claim at small scale: under CPU+memory contention
        Klink's mean output latency is well below Default's."""

        def latency(scheduler):
            queries = build_queries("ysb", 60, WorkloadParams(seed=1))
            metrics = run(
                queries, scheduler, duration=60_000.0, memory_gb=1.0
            )
            return metrics.mean_latency_ms

        assert latency(KlinkScheduler()) < latency(DefaultScheduler()) * 0.7

    def test_klink_matches_baselines_underloaded(self):
        def latency(scheduler):
            queries = build_queries("ysb", 4, WorkloadParams(seed=1))
            return run(queries, scheduler, duration=30_000.0).mean_latency_ms

        klink = latency(KlinkScheduler())
        default = latency(DefaultScheduler())
        assert klink == pytest.approx(default, rel=0.15)

    def test_memory_management_reduces_memory_footprint(self):
        def mem(scheduler):
            queries = build_queries("ysb", 60, WorkloadParams(seed=1))
            metrics = run(queries, scheduler, duration=60_000.0, memory_gb=1.0)
            return metrics.mean_memory_bytes

        with_mm = mem(KlinkScheduler())
        without = mem(KlinkScheduler(enable_memory_management=False))
        assert with_mm < without * 0.6

    def test_swm_counts_comparable_across_policies(self):
        # No policy silently suppresses window output under light load.
        counts = {}
        for scheduler in (DefaultScheduler(), StreamBoxScheduler(), KlinkScheduler()):
            queries = build_queries("ysb", 6, WorkloadParams(seed=2))
            counts[scheduler.name] = len(
                run(queries, scheduler, duration=30_000.0).swm_latencies
            )
        assert max(counts.values()) - min(counts.values()) <= 3, counts


class TestWatermarkCorrectness:
    def test_swm_latency_floor_respects_physics(self):
        # Latency can never be below (lateness + network delay) because
        # the sweeping watermark's event-time lags its generation.
        q = make_simple_query(delay_ms=100.0, window_ms=1000.0)
        metrics = run([q], DefaultScheduler(), duration=20_000.0, cores=4)
        assert min(metrics.swm_latencies) >= 200.0 - 1e-6

    def test_windows_fire_in_deadline_order(self):
        q = make_simple_query(window_ms=1000.0)
        engine = Engine([q], DefaultScheduler(), cores=4, cycle_ms=100.0)
        engine.run(15_000.0)
        times = [t for t, _ in q.sink.swm_latencies]
        assert times == sorted(times)

    def test_join_output_requires_all_streams(self):
        # Stop one stream's generation after 5 s; the join's event clock
        # stalls at that stream's last watermark.
        q = make_join_query(
            window_ms=1000.0, slide_ms=1000.0, watermark_period_ms=500.0
        )
        engine = Engine([q], DefaultScheduler(), cores=4, cycle_ms=100.0)
        engine.run(5_000.0)
        fired_at_5s = q.join_operators()[0].stats.panes_fired
        # Freeze stream 1 by pushing its generation cursor beyond the run.
        q.bindings[1].next_gen_time = 1e12
        q.bindings[1].next_watermark_time = 1e12
        q.bindings[1].next_marker_time = 1e12
        engine.run(5_000.0)
        fired_at_10s = q.join_operators()[0].stats.panes_fired
        assert fired_at_10s <= fired_at_5s + 1  # at most one in-flight pane


class TestRobustness:
    def test_extreme_overload_stays_bounded(self):
        # 100x overload: shedding keeps memory bounded and the run finishes.
        q = make_simple_query(rate_eps=100_000.0, cost_ms=1.0)
        metrics = run(
            [q], DefaultScheduler(), duration=20_000.0, memory_gb=0.001,
            cores=2,
        )
        assert metrics.events_shed > 0
        peak = max(s.memory_bytes for s in metrics.samples)
        # Backpressure is evaluated at cycle boundaries, so the footprint
        # can overshoot the cap by up to ~one cycle of arrivals.
        cycle_arrivals_bytes = 100_000.0 * 0.120 * 100 * 2
        assert peak <= 0.001 * GIB + cycle_arrivals_bytes

    def test_idle_query_costs_nothing(self):
        q = make_simple_query(rate_eps=0.0)
        metrics = run([q], KlinkScheduler(), duration=10_000.0, cores=2)
        assert metrics.total_events_processed == 0.0
        assert metrics.mean_cpu_fraction < 0.01
