"""Tests for repro.faults.invariants.InvariantMonitor.

Two halves: clean runs across every scheduling policy must report zero
violations (including the zero-fault scheduler-equivalence smoke test of
the ISSUE), and deliberately corrupted engine state must be *detected* —
a monitor that never fires is worthless.
"""

import pytest

from repro.core.baselines import (
    DefaultScheduler,
    FCFSScheduler,
    HighestRateScheduler,
    RoundRobinScheduler,
    StreamBoxScheduler,
)
from repro.core.klink import KlinkScheduler
from repro.core.scheduler import Allocation, Plan
from repro.faults import FaultPlan, InvariantError, InvariantMonitor
from repro.spe.engine import Engine

from tests.helpers import make_join_query, make_simple_query


def run_monitored(scheduler, *, faults=None, duration_ms=8_000.0, **monitor_kwargs):
    queries = [
        make_simple_query("q0", rate_eps=400.0, delay_ms=20.0, seed=0),
        make_simple_query("q1", rate_eps=300.0, delay_ms=40.0, seed=1),
    ]
    monitor = InvariantMonitor(**monitor_kwargs)
    engine = Engine(
        queries, scheduler, cores=2, cycle_ms=100.0, seed=3,
        faults=faults, invariants=monitor,
    )
    metrics = engine.run(duration_ms)
    return engine, metrics, monitor


class TestCleanRuns:
    @pytest.mark.parametrize(
        "factory",
        [
            KlinkScheduler,
            DefaultScheduler,
            FCFSScheduler,
            RoundRobinScheduler,
            HighestRateScheduler,
            StreamBoxScheduler,
        ],
        ids=lambda f: f.__name__,
    )
    def test_zero_violations_every_policy(self, factory):
        _, metrics, monitor = run_monitored(factory())
        assert monitor.ok, monitor.report()
        assert monitor.cycles_checked == metrics.cycles
        assert metrics.invariant_violations == 0

    def test_join_query_clean(self):
        monitor = InvariantMonitor()
        engine = Engine(
            [make_join_query("jq0")], KlinkScheduler(),
            cores=2, cycle_ms=100.0, invariants=monitor,
        )
        engine.run(8_000.0)
        assert monitor.ok, monitor.report()

    def test_monitored_run_identical_to_unmonitored(self):
        # Pure observation: attaching the monitor must not change the run.
        _, with_monitor, _ = run_monitored(KlinkScheduler())
        queries = [
            make_simple_query("q0", rate_eps=400.0, delay_ms=20.0, seed=0),
            make_simple_query("q1", rate_eps=300.0, delay_ms=40.0, seed=1),
        ]
        bare = Engine(queries, KlinkScheduler(), cores=2, cycle_ms=100.0, seed=3)
        without = bare.run(8_000.0)
        assert with_monitor.swm_latencies == without.swm_latencies
        assert with_monitor.total_events_processed == pytest.approx(
            without.total_events_processed
        )


class TestSchedulerEquivalenceSmoke:
    """ISSUE satellite 4: zero-fault plan, one query — Klink, FCFS, and RR
    all drain the workload with zero violations."""

    @pytest.mark.parametrize(
        "factory",
        [KlinkScheduler, FCFSScheduler, RoundRobinScheduler],
        ids=lambda f: f.__name__,
    )
    def test_drains_with_zero_violations(self, factory):
        query = make_simple_query("q0", rate_eps=500.0, delay_ms=10.0)
        monitor = InvariantMonitor()
        engine = Engine(
            [query], factory(), cores=4, cycle_ms=100.0,
            faults=FaultPlan([]), invariants=monitor,
        )
        metrics = engine.run(10_000.0)
        assert monitor.ok, monitor.report()
        assert metrics.fault_cycles == 0
        assert metrics.total_events_processed > 0
        # Drained: nothing left sitting in the pipeline's channels.
        queued = sum(
            ch.queued_events for op in query.operators for ch in op.inputs
        )
        assert queued == pytest.approx(0.0, abs=1e-6)


class TestDetection:
    def test_detects_channel_corruption(self):
        queries = [make_simple_query("q0", rate_eps=400.0)]
        monitor = InvariantMonitor()
        engine = Engine(
            queries, FCFSScheduler(), cores=2, cycle_ms=100.0, invariants=monitor,
        )
        engine.run(2_000.0)
        assert monitor.ok
        # Fabricate events out of thin air, then re-check.
        channel = queries[0].bindings[0].channel
        channel._queued_events += 1_000.0
        monitor.on_cycle(engine)
        assert not monitor.ok
        assert any(
            v.invariant == "channel-conservation" for v in monitor.violations
        )

    def test_detects_lost_ingestion(self):
        queries = [make_simple_query("q0", rate_eps=400.0)]
        monitor = InvariantMonitor()
        engine = Engine(
            queries, FCFSScheduler(), cores=2, cycle_ms=100.0, invariants=monitor,
        )
        engine.run(2_000.0)
        queries[0].bindings[0].events_ingested += 500.0  # claim unseen events
        monitor.on_cycle(engine)
        assert any(
            v.invariant == "event-conservation" for v in monitor.violations
        )

    def test_detects_watermark_regression(self):
        queries = [make_simple_query("q0", rate_eps=400.0)]
        monitor = InvariantMonitor()
        engine = Engine(
            queries, FCFSScheduler(), cores=2, cycle_ms=100.0, invariants=monitor,
        )
        engine.run(3_000.0)
        progress = queries[0].bindings[0].progress
        progress.last_watermark_ts -= 10_000.0  # move time backwards
        monitor.on_cycle(engine)
        assert any(
            v.invariant == "watermark-monotonicity" for v in monitor.violations
        )

    def test_detects_cpu_overrun(self):
        queries = [make_simple_query("q0")]
        monitor = InvariantMonitor()
        engine = Engine(
            queries, FCFSScheduler(), cores=2, cycle_ms=100.0, invariants=monitor,
        )
        engine.run(1_000.0)
        monitor.on_cycle(engine, cpu_used_ms=1e9)
        assert any(v.invariant == "cpu-budget" for v in monitor.violations)

    def test_detects_insane_plan(self):
        queries = [make_simple_query("q0")]
        monitor = InvariantMonitor()
        engine = Engine(
            queries, FCFSScheduler(), cores=2, cycle_ms=100.0, invariants=monitor,
        )
        engine.run(1_000.0)
        query = queries[0]
        bogus = Plan(
            [Allocation(query, query.operators), Allocation(query, query.operators)],
            mode="priority",
        )
        monitor.on_cycle(engine, plans=[bogus])
        assert any(v.invariant == "plan-sanity" for v in monitor.violations)

    def test_strict_mode_raises(self):
        queries = [make_simple_query("q0")]
        monitor = InvariantMonitor(strict=True)
        engine = Engine(
            queries, FCFSScheduler(), cores=2, cycle_ms=100.0, invariants=monitor,
        )
        engine.run(1_000.0)
        with pytest.raises(InvariantError):
            monitor.on_cycle(engine, cpu_used_ms=1e9)

    def test_max_violations_caps_storage_not_count(self):
        monitor = InvariantMonitor(max_violations=3)
        for i in range(10):
            monitor._record(float(i), "clock", "engine", "synthetic")
        assert monitor.total_violations == 10
        assert len(monitor.violations) == 3
        assert "7 more" in monitor.report()

    def test_report_mentions_violation(self):
        monitor = InvariantMonitor()
        monitor._record(42.0, "cpu-budget", "engine", "synthetic overrun")
        text = monitor.report()
        assert "VIOLATED" in text
        assert "cpu-budget" in text
        assert "synthetic overrun" in text
