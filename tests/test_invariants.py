"""System-level invariants checked over full engine runs.

These complement the per-module property tests: after arbitrary
scheduling, every event the sources handed to the engine must be
accounted for somewhere (conservation), watermarks must reach sinks in
monotonically increasing order, and window outputs must respect the
SWM-ordering invariants of Sec. 2.2.
"""

import math

import pytest

from repro.core.baselines import DefaultScheduler, FCFSScheduler
from repro.core.klink import KlinkScheduler
from repro.spe.engine import Engine
from repro.spe.events import EventBatch, Watermark
from repro.spe.memory import MemoryConfig
from repro.spe.operators import SinkOperator
from tests.helpers import make_join_query, make_simple_query


def run_engine(queries, scheduler, duration=20_000.0, **kw):
    engine = Engine(queries, scheduler, cores=4, cycle_ms=100.0, **kw)
    return engine, engine.run(duration)


SCHEDULERS = [DefaultScheduler, FCFSScheduler, KlinkScheduler]


class TestEventConservation:
    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_ingested_events_fully_accounted(self, scheduler_cls):
        """ingested = consumed by first operator + still queued there."""
        q = make_simple_query(rate_eps=2000.0, burst_factor=2.0)
        engine, metrics = run_engine([q], scheduler_cls())
        first = q.operators[0]
        accounted = first.stats.events_in + first.inputs[0].queued_events
        assert accounted == pytest.approx(metrics.total_events_ingested, rel=1e-9)

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_filter_mass_balance(self, scheduler_cls):
        """events_out == selectivity * events_in at the filter."""
        q = make_simple_query(selectivity=0.5)
        engine, _ = run_engine([q], scheduler_cls())
        filt = q.operators[0]
        assert filt.stats.events_out == pytest.approx(
            0.5 * filt.stats.events_in, rel=1e-9
        )

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_window_mass_balance(self, scheduler_cls):
        """Window input = buffered state + fired-pane mass + late drops."""
        q = make_simple_query()
        engine, _ = run_engine([q], scheduler_cls())
        window = q.windowed_operators()[0]
        upstream_out = q.operators[0].stats.events_out
        consumed = window.stats.events_in + window.inputs[0].queued_events
        assert consumed == pytest.approx(upstream_out, rel=1e-9)


class TestWatermarkMonotonicity:
    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_sink_swm_timestamps_monotone(self, scheduler_cls):
        q = make_simple_query(delay_ms=50.0)
        engine, _ = run_engine([q], scheduler_cls())
        times = [t for t, _ in q.sink.swm_latencies]
        assert times == sorted(times)

    def test_window_event_clock_never_regresses(self):
        q = make_join_query(delays_ms=(0.0, 120.0))
        engine = Engine([q], KlinkScheduler(), cores=4, cycle_ms=100.0)
        join = q.join_operators()[0]
        last_clock = -math.inf
        for _ in range(200):
            engine.step_cycle()
            assert join.event_clock >= last_clock
            last_clock = join.event_clock


class TestSwmOrderingInvariants:
    def test_window_output_precedes_swm_at_sink_channel(self):
        """Invariant (ii) of Sec. 2.2: the output operator receives a
        window's events before the SWM that swept them."""

        class RecordingSink(SinkOperator):
            def __init__(self, name):
                super().__init__(name)
                self.sequence = []

            def _on_batch(self, batch, input_index, now):
                super()._on_batch(batch, input_index, now)
                self.sequence.append(("data", batch.t_end))

            def _on_watermark(self, wm, input_index, now):
                super()._on_watermark(wm, input_index, now)
                if wm.is_swm:
                    self.sequence.append(("swm", wm.timestamp))

        q = make_simple_query()
        # Swap in the recording sink.
        old_sink = q.sink
        sink = RecordingSink("rec")
        window = q.windowed_operators()[0]
        window.connect(sink)
        q2_ops = q.operators[:-1] + [sink]
        from repro.spe.query import Query

        q2 = Query("q2", q.bindings, q2_ops, sink)
        engine = Engine([q2], DefaultScheduler(), cores=4, cycle_ms=100.0)
        engine.run(10_000.0)
        # Every SWM is preceded (somewhere earlier in the sequence) by
        # the pane output whose event-time it covers.
        seen_data = []
        for kind, ts in sink.sequence:
            if kind == "data":
                seen_data.append(ts)
            else:
                assert any(d <= ts for d in seen_data), (ts, seen_data[:3])

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_swm_count_bounded_by_elapsed_windows(self, scheduler_cls):
        q = make_simple_query(window_ms=1000.0)
        engine, metrics = run_engine([q], scheduler_cls(), duration=20_000.0)
        assert len(metrics.swm_latencies) <= 20  # at most one per window


class TestMemoryInvariants:
    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_memory_never_negative(self, scheduler_cls):
        q = make_simple_query(rate_eps=5000.0)
        engine, metrics = run_engine([q], scheduler_cls())
        assert all(s.memory_bytes >= 0 for s in metrics.samples)

    def test_shed_plus_ingested_bounded_by_generated(self):
        q = make_simple_query(rate_eps=20_000.0, cost_ms=0.5)
        engine, metrics = run_engine(
            [q],
            DefaultScheduler(),
            memory=MemoryConfig(capacity_bytes=100_000.0,
                                backpressure_threshold=0.5),
        )
        generated_upper = 20_000.0 * 20.0  # rate x duration (s)
        total = metrics.total_events_ingested + metrics.events_shed
        assert total <= generated_upper * 3.0  # bursts can exceed the mean
