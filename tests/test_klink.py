"""Unit tests for the Klink scheduler: slack evaluation, SWM urgency,
join handling, memory-management transitions, and overhead accounting."""

import math

import pytest

from repro.core.klink import KlinkScheduler
from repro.core.scheduler import SchedulerContext
from repro.spe.events import EventBatch, Watermark
from tests.helpers import make_join_query, make_simple_query


def ctx_for(queries, now=0.0, mem=0.0, cycle=120.0):
    return SchedulerContext(
        now=now, cycle_ms=cycle, cores=4, queries=queries,
        memory_utilization=mem,
    )


def enqueue(query, count=10, arrival=0.0, t0=0.0, t1=100.0):
    query.operators[0].inputs[0].push(
        EventBatch(count=count, t_start=t0, t_end=t1), arrival
    )


class TestSlackEvaluation:
    def test_earlier_deadline_gets_lower_slack(self):
        early = make_simple_query("early", window_ms=500.0)
        late = make_simple_query("late", window_ms=5000.0)
        klink = KlinkScheduler()
        ctx = ctx_for([early, late])
        sl_early, _ = klink.query_slack(early, ctx)
        sl_late, _ = klink.query_slack(late, ctx)
        assert sl_early < sl_late

    def test_queued_work_reduces_slack(self):
        idle = make_simple_query("idle", cost_ms=1.0)
        busy = make_simple_query("busy", cost_ms=1.0)
        enqueue(busy, count=200)
        klink = KlinkScheduler()
        ctx = ctx_for([idle, busy])
        assert klink.query_slack(busy, ctx)[0] < klink.query_slack(idle, ctx)[0]

    def test_windowless_query_has_infinite_slack(self):
        from repro.spe.operators import MapOperator, SinkOperator
        from repro.spe.query import Query, SourceBinding, SourceSpec
        from repro.net.delays import ConstantDelay

        model = ConstantDelay(0.0)
        spec = SourceSpec("s", 100.0, 500.0, 0.0, model)
        m = MapOperator("m", 0.01)
        sink = SinkOperator("snk")
        m.connect(sink)
        q = Query("plain", [SourceBinding(spec, m)], [m, sink], sink)
        klink = KlinkScheduler()
        slack, steps = klink.query_slack(q, ctx_for([q]))
        assert math.isinf(slack)

    def test_plan_orders_by_slack(self):
        early = make_simple_query("early", window_ms=500.0)
        late = make_simple_query("late", window_ms=5000.0)
        plan = KlinkScheduler().plan(ctx_for([late, early]))
        assert plan.allocations[0].query is early
        assert plan.mode == "priority"
        assert not plan.throttle_ingestion


class TestPendingSwmUrgency:
    def make_pending(self, query_id="pend", window_ms=1000.0):
        """A query whose SWM was ingested but not yet processed."""
        q = make_simple_query(query_id, window_ms=window_ms)
        window = q.windowed_operators()[0]
        # Buffer events into the first pane.
        window.inputs[0].push(
            EventBatch(count=5, t_start=0, t_end=500), 0.0
        )
        window.step(1e9, 0.0)
        # The engine ingested a sweeping watermark (progress knows), but
        # the watermark record is still queued upstream of the window.
        q.bindings[0].progress.observe_watermark(window_ms, now=window_ms + 100)
        return q

    def test_pending_swm_detected(self):
        q = self.make_pending()
        slack = KlinkScheduler._pending_swm_slack(q, now=1200.0)
        assert slack is not None
        assert slack == pytest.approx(1000.0 - 1200.0)

    def test_no_pending_without_buffered_pane(self):
        q = make_simple_query()
        q.bindings[0].progress.observe_watermark(1000.0, now=1100.0)
        assert KlinkScheduler._pending_swm_slack(q, now=1200.0) is None

    def test_no_pending_before_swm_ingestion(self):
        q = make_simple_query()
        window = q.windowed_operators()[0]
        window.inputs[0].push(EventBatch(count=5, t_start=0, t_end=500), 0.0)
        window.step(1e9, 0.0)
        assert KlinkScheduler._pending_swm_slack(q, now=500.0) is None

    def test_pending_query_preempts_proactive_ones(self):
        pending = self.make_pending()
        upcoming = make_simple_query("up", window_ms=1000.0)
        klink = KlinkScheduler()
        ctx = ctx_for([upcoming, pending], now=1200.0)
        plan = klink.plan(ctx)
        assert plan.allocations[0].query is pending

    def test_older_pending_deadline_first(self):
        older = self.make_pending("older", window_ms=500.0)
        newer = self.make_pending("newer", window_ms=1000.0)
        klink = KlinkScheduler()
        ctx = ctx_for([newer, older], now=1500.0)
        plan = klink.plan(ctx)
        assert plan.allocations[0].query is older


class TestJoinHandling:
    def test_join_slack_uses_minimum_across_streams(self):
        q = make_join_query(delays_ms=(0.0, 400.0))
        klink = KlinkScheduler()
        # Feed distinct delay histories per stream.
        fast, slow = q.bindings
        for i in range(5):
            fast.progress.observe_delay(0.0)
            slow.progress.observe_delay(400.0)
            fast.progress.observe_watermark((i + 1) * 1000.0, (i + 1) * 1000.0)
            slow.progress.observe_watermark((i + 1) * 1000.0, (i + 1) * 1000.0 + 400)
        ctx = ctx_for([q], now=5000.0)
        slack, _ = klink.query_slack(q, ctx)
        # The min over streams is what Sec. 3.3 requires: recompute each
        # stream's slack separately and check the query slack equals it.
        from repro.core.slack import expected_slack

        per_stream = []
        for binding in q.bindings:
            est = klink.estimator.estimate(binding, phase=q.deployed_at)
            per_stream.append(
                expected_slack(est, 5000.0, q.pending_cost_ms(), 120.0)
            )
        assert slack == pytest.approx(min(per_stream))


class TestMemoryManagementTransitions:
    def test_enters_mm_at_threshold(self):
        klink = KlinkScheduler(memory_threshold=0.5)
        q = make_simple_query()
        enqueue(q)
        klink.plan(ctx_for([q], mem=0.6))
        assert klink._mm_active
        assert klink.mm_episodes == 1

    def test_stays_normal_below_threshold(self):
        klink = KlinkScheduler(memory_threshold=0.5)
        q = make_simple_query()
        klink.plan(ctx_for([q], mem=0.4))
        assert not klink._mm_active

    def test_exits_after_releasing_half(self):
        klink = KlinkScheduler(memory_threshold=0.5, mm_release_fraction=0.5)
        q = make_simple_query()
        klink.plan(ctx_for([q], mem=0.8, now=0.0))
        assert klink._mm_active
        klink.plan(ctx_for([q], mem=0.39, now=120.0))
        assert not klink._mm_active

    def test_exits_after_time_budget(self):
        klink = KlinkScheduler(memory_threshold=0.5, mm_max_ms=1000.0)
        q = make_simple_query()
        klink.plan(ctx_for([q], mem=0.8, now=0.0))
        klink.plan(ctx_for([q], mem=0.8, now=500.0))
        assert klink._mm_active
        klink.plan(ctx_for([q], mem=0.8, now=1500.0))
        assert not klink._mm_active

    def test_mm_disabled_variant_never_switches(self):
        klink = KlinkScheduler(enable_memory_management=False)
        q = make_simple_query()
        plan = klink.plan(ctx_for([q], mem=0.99))
        assert not klink._mm_active
        assert not plan.throttle_ingestion
        assert klink.name == "Klink (w/o MM)"

    def test_mm_plan_throttles_ingestion(self):
        klink = KlinkScheduler(memory_threshold=0.5)
        q = make_simple_query()
        enqueue(q)
        plan = klink.plan(ctx_for([q], mem=0.8))
        assert plan.throttle_ingestion

    def test_mm_plan_includes_sink_in_prefixes(self):
        klink = KlinkScheduler(memory_threshold=0.5)
        q = make_simple_query(selectivity=0.25)
        enqueue(q, count=100)
        plan = klink.plan(ctx_for([q], mem=0.8))
        ops = plan.allocations[0].runnable_operators()
        assert q.sink in ops

    def test_reset_clears_state(self):
        klink = KlinkScheduler(memory_threshold=0.5)
        q = make_simple_query()
        klink.plan(ctx_for([q], mem=0.8))
        klink.reset()
        assert not klink._mm_active
        assert klink.mm_episodes == 0
        assert klink.last_slacks == {}


class TestOverheadModel:
    def test_overhead_scales_with_queries(self):
        klink = KlinkScheduler()
        few = [make_simple_query(f"a{i}") for i in range(2)]
        many = [make_simple_query(f"b{i}") for i in range(20)]
        klink.plan(ctx_for(few))
        overhead_few = klink.overhead_ms(ctx_for(few))
        klink.plan(ctx_for(many))
        overhead_many = klink.overhead_ms(ctx_for(many))
        assert overhead_many > overhead_few

    def test_higher_confidence_costs_more(self):
        queries = [make_simple_query(f"q{i}") for i in range(5)]
        # Build some delay history so intervals are non-degenerate.
        for q in queries:
            p = q.bindings[0].progress
            for i in range(10):
                p.observe_delay(100.0 * (i % 3))
                p.observe_watermark((i + 1) * 1000.0, (i + 1) * 1000.0 + 50)
        k95 = KlinkScheduler(confidence=95.0)
        k67 = KlinkScheduler(confidence=67.0)
        k95.plan(ctx_for(queries, now=10_000.0))
        k67.plan(ctx_for(queries, now=10_000.0))
        assert k95.overhead_ms(ctx_for(queries)) >= k67.overhead_ms(ctx_for(queries))
