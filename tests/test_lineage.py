"""Event-lineage tracing and SWM-forecast audit (ISSUE 9 tentpole).

The contract under test:

* sampling is keyed-hash-deterministic (same seed -> same records,
  across reruns), monotone in the rate, and off by default;
* for every completed record the five waterfall components sum to the
  end-to-end latency *exactly* (shared span boundaries, closed
  virtual-clock arithmetic);
* tracing is a pure observer: summaries, audit trails, and checkpoint
  bytes are byte-identical with tracing on and off;
* in-flight lineage state survives the checkpoint codec and a real
  failover (restart recovery) run;
* Klink's SWM-arrival estimate is better calibrated than the naive
  last-period predictor on YSB;
* v1/v2 traces (checked-in fixtures) still read; a corrupt lineage
  record fails loudly with file:line context.
"""

import json
import os
from collections import deque
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.bench.runner import (
    ExperimentConfig,
    run_experiment,
    trace_from_result,
)
from repro.cli import main
from repro.faults import FaultPlan, NodeFailure
from repro.obs import (
    RECORD_STATUSES,
    SPAN_KINDS,
    LineageTracker,
    SwmForecastAudit,
    build_report,
    read_trace,
    render_text,
    render_waterfall,
    validate_lineage,
    validate_lineage_summary,
    validate_report,
    validate_swm_forecast,
    waterfall,
)
from repro.obs.lineage import _Record
from repro.resilience import capture_lineage, restore_lineage

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

BASE = ExperimentConfig(
    workload="ysb",
    scheduler="Klink",
    n_queries=3,
    duration_ms=8_000.0,
    seed=3,
)


def traced(rate=1.0, **kw):
    return run_experiment(replace(BASE, lineage_sample_rate=rate, **kw))


class TestSampling:
    def test_off_by_default(self):
        res = run_experiment(BASE)
        assert res.config.lineage_sample_rate == 0.0
        assert res.lineage is None

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            LineageTracker(-0.1)
        with pytest.raises(ValueError):
            LineageTracker(1.5)

    def test_decisions_deterministic_across_instances(self):
        a = LineageTracker(0.25, seed=9)
        b = LineageTracker(0.25, seed=9)
        points = [("q0", 0, float(t)) for t in range(0, 5000, 10)]
        assert [a.sampled(*p) for p in points] == [b.sampled(*p) for p in points]
        hits = sum(a.sampled(*p) for p in points)
        assert 0 < hits < len(points)

    def test_seed_changes_the_sample(self):
        a = LineageTracker(0.25, seed=1)
        b = LineageTracker(0.25, seed=2)
        points = [("q0", 0, float(t)) for t in range(0, 5000, 10)]
        assert [a.sampled(*p) for p in points] != [b.sampled(*p) for p in points]

    def test_rate_monotone_and_extremes(self):
        lo = LineageTracker(0.05, seed=4)
        hi = LineageTracker(0.5, seed=4)
        none = LineageTracker(0.0, seed=4)
        everything = LineageTracker(1.0, seed=4)
        for t in range(0, 3000, 7):
            p = ("q1", 2, float(t))
            if lo.sampled(*p):
                assert hi.sampled(*p)  # threshold scheme nests samples
            assert not none.sampled(*p)
            assert everything.sampled(*p)


class TestWaterfallExactness:
    @pytest.fixture(scope="class")
    def rows(self):
        return traced(rate=1.0).lineage.lineage_rows()

    def test_every_record_closes(self, rows):
        assert rows, "rate 1.0 must sample records"
        for row in rows:
            assert row["status"] in RECORD_STATUSES
            validate_lineage(json.loads(json.dumps(row)))

    def test_components_sum_exactly(self, rows):
        for row in rows:
            assert sum(row["components"].values()) == row["end_to_end_ms"]
            assert set(row["components"]) == set(SPAN_KINDS)

    def test_span_chain_is_contiguous(self, rows):
        for row in rows:
            spans = row["spans"]
            assert spans[0]["kind"] == "network"
            assert spans[0]["start"] == row["t_end"]
            assert spans[-1]["end"] == row["completed_at"]
            for prev, nxt in zip(spans, spans[1:]):
                assert prev["end"] == nxt["start"]

    def test_delivered_records_exist_and_aggregate(self, rows):
        agg = waterfall(rows)
        assert agg["sampled"] == len(rows)
        assert agg["delivered"] > 0
        shares = agg["overall"]["shares_pct"]
        assert abs(sum(shares.values()) - 100.0) < 1e-9
        assert {r["query_id"] for r in agg["by_query"]} <= {
            f"ysb-{i}" for i in range(BASE.n_queries)
        }


class TestPureObserver:
    """Tracing must not perturb the simulation in any observable way."""

    @pytest.fixture(scope="class")
    def pair(self):
        kw = dict(audit=True, telemetry=True, checkpoint_period_ms=3_000.0)
        plain = run_experiment(replace(BASE, **kw))
        sampled = run_experiment(
            replace(BASE, lineage_sample_rate=0.5, **kw)
        )
        return plain, sampled

    def test_summary_byte_identical(self, pair):
        plain, sampled = pair
        assert json.dumps(plain.summary, sort_keys=True) == json.dumps(
            sampled.summary, sort_keys=True
        )

    def test_audit_trail_byte_identical(self, pair):
        plain, sampled = pair
        assert plain.audit.to_jsonl_str() == sampled.audit.to_jsonl_str()

    def test_checkpoint_bytes_identical(self, pair):
        plain, sampled = pair
        assert plain.metrics.checkpoints_taken > 0
        assert (
            plain.metrics.checkpoints_taken
            == sampled.metrics.checkpoints_taken
        )
        assert (
            plain.metrics.checkpoint_bytes_last
            == sampled.metrics.checkpoint_bytes_last
        )

    def test_rerun_reproduces_lineage(self):
        a = traced(rate=0.3)
        b = traced(rate=0.3)
        assert a.lineage.lineage_rows() == b.lineage.lineage_rows()
        assert a.lineage.swm_forecast_rows() == b.lineage.swm_forecast_rows()
        sa, sb = a.lineage.summary_row(), b.lineage.summary_row()
        assert sa == sb
        assert sa["rows_sampled"] == len(a.lineage.lineage_rows())


class TestCheckpointCodec:
    def _populated_tracker(self):
        tracker = LineageTracker(0.5, seed=2)
        rec = _Record("q0:0:100.0", "q0", 0, 100.0)
        rec.spans.append(("network", None, 100.0, 130.0))
        tracker._inflight = {("q0", "agg", 100.0): deque([[rec]])}
        parked = _Record("q0:0:200.0", "q0", 0, 200.0)
        parked.absorbed_at = 230.0
        parked.spans.append(("network", None, 200.0, 230.0))
        tracker._window_wait = {("q0", "agg", 1000.0): [parked]}
        tracker.rows_sampled = 2
        tracker.spans_recorded = 0
        tracker.forecast.on_prediction(
            "q0",
            0,
            SimpleNamespace(deadline=1_000.0, mean=940.0),
            SimpleNamespace(progress=None, spec=None),
            500.0,
        )
        return tracker

    def test_capture_restore_round_trip(self):
        tracker = self._populated_tracker()
        state = capture_lineage(tracker)
        # the codec state must be JSON-serializable (rides the snapshot store)
        state = json.loads(json.dumps(state))
        fresh = LineageTracker(0.5, seed=2)
        restore_lineage(fresh, state)
        assert capture_lineage(fresh) == capture_lineage(tracker)
        assert fresh.rows_sampled == 2
        assert list(fresh._inflight) == [("q0", "agg", 100.0)]
        restored = fresh._inflight[("q0", "agg", 100.0)][0][0]
        assert restored.spans == [("network", None, 100.0, 130.0)]
        assert fresh._window_wait[("q0", "agg", 1000.0)][0].absorbed_at == 230.0
        assert fresh.forecast.evaluations == 1

    def test_end_of_run_tracker_round_trips(self):
        res = traced(rate=1.0, duration_ms=5_000.0)
        tracker = res.lineage
        fresh = LineageTracker(tracker.sample_rate, seed=tracker.seed)
        restore_lineage(fresh, capture_lineage(tracker))
        assert fresh.lineage_rows() == tracker.lineage_rows()
        assert fresh.rows_sampled == tracker.rows_sampled
        assert fresh.spans_recorded == tracker.spans_recorded
        assert fresh.forecast.evaluations == tracker.forecast.evaluations


def _seed_with_node_failure(duration_ms, query_ids):
    for seed in range(80):
        plan = FaultPlan.random(seed, duration_ms, query_ids=query_ids)
        if any(
            isinstance(f, NodeFailure) and f.end_ms <= duration_ms - 1_000.0
            for f in plan
        ):
            return seed
    raise AssertionError("no node-failure seed found in range")


class TestFailoverWithLineage:
    def test_lineage_survives_restart_recovery(self):
        duration = 20_000.0
        ids = [f"ysb-{i}" for i in range(3)]
        seed = _seed_with_node_failure(duration, ids)
        kw = dict(
            duration_ms=duration,
            fault_seed=seed,
            checkpoint_period_ms=3_000.0,
            recover="restart",
        )
        plain = run_experiment(replace(BASE, **kw))
        sampled = run_experiment(replace(BASE, lineage_sample_rate=0.3, **kw))
        assert plain.metrics.recoveries >= 1
        # observer contract holds across rollback + replay
        assert json.dumps(plain.summary, sort_keys=True) == json.dumps(
            sampled.summary, sort_keys=True
        )
        rows = sampled.lineage.lineage_rows()
        assert rows
        for row in rows:
            assert sum(row["components"].values()) == row["end_to_end_ms"]


class TestSwmForecastAudit:
    def _binding(self, last_ingest=None, period=500.0):
        progress = (
            None
            if last_ingest is None
            else SimpleNamespace(last_swm_ingest_time=last_ingest)
        )
        return SimpleNamespace(
            progress=progress,
            spec=SimpleNamespace(watermark_period_ms=period),
        )

    def test_prediction_resolution_and_errors(self):
        audit = SwmForecastAudit()
        audit.register_source("q0", 0, 500.0, {"kind": "constant"})
        est = SimpleNamespace(deadline=1_000.0, mean=1_180.0)
        audit.on_prediction("q0", 0, est, self._binding(700.0), 900.0)
        audit.on_actual("q0", 0, 1_000.0, 1_150.0)
        (row,) = audit.rows()
        assert row["evaluations"] == 1
        assert row["deadlines_resolved"] == 1
        assert row["mean_error_ms"] == 1_180.0 - 1_150.0  # over-prediction
        assert row["naive_mean_abs_error_ms"] == abs(700.0 + 500.0 - 1_150.0)
        assert row["over_predictions"] == 1
        assert row["watermark_period_ms"] == 500.0

    def test_unswept_deadlines_stay_pending(self):
        audit = SwmForecastAudit()
        est = SimpleNamespace(deadline=2_000.0, mean=2_100.0)
        audit.on_prediction("q0", 0, est, self._binding(), 900.0)
        audit.on_actual("q0", 0, 1_000.0, 1_100.0)  # SWM below the deadline
        (row,) = audit.rows()
        assert row["evaluations"] == 0
        assert row["deadlines_unresolved"] == 1
        assert row["mean_abs_error_ms"] is None

    def test_episode_runs_count_sign_flips(self):
        audit = SwmForecastAudit()
        # four deadlines resolving to errors +, +, -, +  -> 2 over / 1 under
        for deadline, mean, now in [
            (1_000.0, 1_050.0, 1_010.0),
            (2_000.0, 2_060.0, 2_010.0),
            (3_000.0, 2_980.0, 3_010.0),
            (4_000.0, 4_100.0, 4_010.0),
        ]:
            est = SimpleNamespace(deadline=deadline, mean=mean)
            audit.on_prediction("q0", 0, est, self._binding(), now - 100.0)
            audit.on_actual("q0", 0, deadline, now)
        (row,) = audit.rows()
        assert row["deadlines_resolved"] == 4
        assert row["over_episodes"] == 2
        assert row["under_episodes"] == 1

    def test_klink_beats_naive_on_ysb(self):
        res = traced(rate=0.02, n_queries=2, duration_ms=30_000.0)
        rows = res.lineage.swm_forecast_rows()
        comparable = [
            r
            for r in rows
            if r["mean_abs_error_ms"] is not None
            and r["naive_mean_abs_error_ms"] is not None
        ]
        assert comparable, "30s YSB run must resolve naive-comparable deadlines"
        for row in comparable:
            assert row["mean_abs_error_ms"] < row["naive_mean_abs_error_ms"]
            validate_swm_forecast(json.loads(json.dumps(row)))


class TestTraceAndReport:
    @pytest.fixture(scope="class")
    def traced_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("lineage") / "trace.jsonl")
        traced(
            rate=0.5,
            audit=True,
            profile=True,
            telemetry=True,
            trace_path=path,
        )
        return path

    def test_round_trip_and_overhead_accounting(self, traced_path):
        trace = read_trace(traced_path)
        assert trace.schema_version == 3
        assert trace.lineage and trace.swm_forecast and trace.lineage_summary
        summary = trace.lineage_summary
        validate_lineage_summary(json.loads(json.dumps(summary)))
        assert summary["rows_sampled"] == len(trace.lineage)
        assert summary["trace_bytes"] > 0
        # trace_bytes is exactly the on-disk footprint of lineage rows
        byte_count = sum(
            len(line.encode("utf-8")) + 1
            for line in (
                json.dumps(
                    {"type": kind, **row}, separators=(",", ":")
                )
                for kind, rows in (
                    ("lineage", trace.lineage),
                    ("swm_forecast", trace.swm_forecast),
                )
                for row in rows
            )
        )
        assert summary["trace_bytes"] == byte_count

    def test_report_sections(self, traced_path):
        report = build_report(read_trace(traced_path))
        validate_report(json.loads(report.to_json()))
        assert report.waterfall is not None
        assert report.swm_forecast
        assert report.lineage_overhead is not None
        text = render_text(report)
        assert "latency waterfall" in text
        assert "SWM-forecast accuracy" in text
        assert "lineage overhead" in text
        focused = render_waterfall(report)
        assert "latency waterfall" in focused
        assert "hottest operators" not in focused

    def test_waterfall_view_without_lineage(self):
        res = run_experiment(replace(BASE, audit=True, profile=True))
        report = build_report(trace_from_result(res))
        assert report.waterfall is None
        assert "--lineage-sample-rate" in render_waterfall(report)


class TestSchemaCompat:
    """Satellite: v1/v2 traces written before the v3 bump still load."""

    @pytest.mark.parametrize("name,version", [
        ("trace_v1.jsonl", 1),
        ("trace_v2.jsonl", 2),
    ])
    def test_old_traces_read_and_report(self, name, version):
        trace = read_trace(os.path.join(FIXTURES, name))
        assert trace.schema_version == version
        assert trace.cycles and trace.summary
        assert trace.lineage == [] and trace.swm_forecast == []
        assert trace.lineage_summary == {}
        report = build_report(trace)
        validate_report(json.loads(report.to_json()))
        assert report.waterfall is None

    @pytest.mark.parametrize("name", ["trace_v1.jsonl", "trace_v2.jsonl"])
    def test_old_traces_pass_check_schema(self, name, capsys):
        rc = main([
            "report", "--trace", os.path.join(FIXTURES, name),
            "--check-schema", "--format", "json",
        ])
        assert rc == 0
        assert "[schema] OK" in capsys.readouterr().err

    def test_corrupt_lineage_record_fails_with_location(self, capsys):
        path = os.path.join(FIXTURES, "trace_v3_corrupt.jsonl")
        with pytest.raises(ValueError) as exc:
            read_trace(path)
        message = str(exc.value)
        assert "corrupt lineage record" in message
        assert "trace_v3_corrupt.jsonl:" in message  # file:line context
        rc = main(["report", "--trace", path])
        assert rc == 1
        assert "cannot read trace" in capsys.readouterr().err


class TestCli:
    def test_run_flag_defaults_off(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run"])
        assert args.lineage_sample_rate == 0.0

    def test_run_with_sampling(self, capsys):
        rc = main([
            "run", "--workload", "ysb", "--scheduler", "Klink",
            "--queries", "2", "--duration", "6", "--cores", "4",
            "--lineage-sample-rate", "1.0",
        ])
        assert rc == 0
        assert "Klink" in capsys.readouterr().out

    def test_report_waterfall_view(self, capsys):
        rc = main([
            "report", "--workload", "ysb", "--queries", "2",
            "--duration", "8", "--seed", "3",
            "--lineage-sample-rate", "1.0", "--waterfall",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency waterfall" in out
        assert "hottest operators" not in out

    def test_report_waterfall_without_lineage_hints(self, capsys):
        rc = main([
            "report", "--workload", "ysb", "--queries", "2",
            "--duration", "6", "--waterfall",
        ])
        assert rc == 0
        assert "--lineage-sample-rate" in capsys.readouterr().out

    def test_check_schema_covers_lineage_records(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        traced(
            rate=0.5,
            n_queries=2,
            duration_ms=6_000.0,
            audit=True,
            profile=True,
            telemetry=True,
            trace_path=path,
        )
        rc = main([
            "report", "--trace", path, "--check-schema", "--format", "json",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "[schema] OK" in err and "lineage records" in err
