"""Unit tests for the gradient-descent linear-regression estimator (LR)."""

import numpy as np
import pytest

from repro.core.lr import GradientDescentLinearRegression, LinearRegressionEstimator
from repro.net.delays import ConstantDelay
from repro.spe.operators import MapOperator
from repro.spe.query import SourceBinding, SourceSpec
from repro.spe.windows import TumblingEventTimeWindows


class TestGradientDescentFit:
    def test_fits_constant_sequence(self):
        lr = GradientDescentLinearRegression().fit([5.0] * 20)
        assert lr.a == pytest.approx(0.0, abs=1e-6)
        assert lr.b == pytest.approx(5.0, abs=1e-6)

    def test_fits_linear_trend(self):
        ys = [2.0 * i + 1.0 for i in range(20)]
        lr = GradientDescentLinearRegression(iterations=2000).fit(ys)
        assert lr.a == pytest.approx(2.0, rel=0.1)

    def test_predict_extrapolates(self):
        ys = [float(i) for i in range(10)]
        lr = GradientDescentLinearRegression(iterations=2000).fit(ys)
        assert lr.predict(10, 10) == pytest.approx(10.0, rel=0.2)

    def test_single_point_fit(self):
        lr = GradientDescentLinearRegression().fit([7.0])
        assert lr.a == 0.0
        assert lr.b == 7.0

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            GradientDescentLinearRegression().fit([])

    def test_residual_std_zero_for_perfect_line(self):
        ys = [3.0 * i for i in range(10)]
        lr = GradientDescentLinearRegression(iterations=5000).fit(ys)
        assert lr.residual_std(ys) < 1.5

    def test_residual_std_floor_for_tiny_samples(self):
        lr = GradientDescentLinearRegression().fit([1.0])
        assert lr.residual_std([1.0]) == 1.0

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            GradientDescentLinearRegression(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientDescentLinearRegression(iterations=0)


class TestLinearRegressionEstimator:
    def make_binding(self, delay=50.0):
        model = ConstantDelay(delay)
        spec = SourceSpec(
            name="s",
            rate_eps=100.0,
            watermark_period_ms=500.0,
            lateness_ms=model.bound,
            delay_model=model,
        )
        op = MapOperator("probe", 0.0)
        binding = SourceBinding(spec, op)
        binding.bind_progress(TumblingEventTimeWindows(1000.0))
        return binding

    def _advance_epochs(self, binding, swm_delays):
        progress = binding.progress
        lateness = binding.spec.lateness_ms
        for i, d in enumerate(swm_delays):
            progress.observe_delay(d)
            deadline = progress.next_deadline
            generation = deadline + lateness
            # round generation up to the watermark grid
            period = binding.spec.watermark_period_ms
            import math

            generation = math.ceil(generation / period) * period
            progress.observe_watermark(generation - lateness, generation + d)

    def test_swm_delay_history_extraction(self):
        binding = self.make_binding()
        self._advance_epochs(binding, [10.0, 20.0, 30.0])
        ys = LinearRegressionEstimator.swm_delay_history(binding, 10)
        assert ys == pytest.approx([10.0, 20.0, 30.0])

    def test_estimate_tracks_constant_delay(self):
        binding = self.make_binding()
        self._advance_epochs(binding, [50.0] * 10)
        est = LinearRegressionEstimator()
        e = est.estimate(binding)
        assert e is not None
        assert e.mean == pytest.approx(e.swm_generation + 50.0, abs=5.0)

    def test_estimate_without_window_is_none(self):
        binding = self.make_binding()
        binding.bind_progress(None)
        assert LinearRegressionEstimator().estimate(binding) is None

    def test_band_is_at_least_one_ms(self):
        binding = self.make_binding()
        self._advance_epochs(binding, [50.0] * 10)
        e = LinearRegressionEstimator().estimate(binding)
        assert e.t_max - e.t_min >= 2.0 * 1.0 - 1e-9

    def test_interval_narrower_than_klink_under_noise(self):
        # LR's residual band on a short window underestimates the spread
        # relative to Klink's population std — the Fig. 9c mechanism.
        from repro.core.estimator import SwmIngestionEstimator

        rng = np.random.default_rng(0)
        binding = self.make_binding()
        delays = list(rng.uniform(0, 100, size=50))
        self._advance_epochs(binding, delays)
        lr = LinearRegressionEstimator().estimate(binding)
        klink = SwmIngestionEstimator().estimate(binding)
        assert (lr.t_max - lr.t_min) < 2.0 * (klink.t_max - klink.t_min)
