"""Unit tests for the memory model, backpressure, and the pressure tax."""

import pytest

from repro.spe.events import EventBatch
from repro.spe.memory import GIB, MemoryConfig, MemoryModel
from tests.helpers import make_simple_query


def loaded_query(n_events=1000, bytes_per_event=100):
    q = make_simple_query()
    q.operators[0].inputs[0].push(
        EventBatch(count=n_events, t_start=0, t_end=1,
                   bytes_per_event=bytes_per_event),
        0.0,
    )
    return q


class TestMemoryConfig:
    def test_defaults_match_paper_scale(self):
        cfg = MemoryConfig()
        assert cfg.capacity_bytes == 17.5 * GIB

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MemoryConfig(capacity_bytes=0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            MemoryConfig(backpressure_threshold=0.0)
        with pytest.raises(ValueError):
            MemoryConfig(backpressure_threshold=1.5)

    def test_rejects_inverted_tax_thresholds(self):
        with pytest.raises(ValueError):
            MemoryConfig(pressure_tax_start=0.5, pressure_tax_full=0.4)

    def test_rejects_tax_max_out_of_range(self):
        with pytest.raises(ValueError):
            MemoryConfig(pressure_tax_max=1.0)

    def test_rejects_bad_per_query_bound_fraction(self):
        # regression: the bound fraction used to skip __post_init__
        # validation entirely, so 0 or >1 silently produced a config
        # that could never stall (or always stalled) queries
        for bad in (0.0, -0.25, 1.5):
            with pytest.raises(ValueError):
                MemoryConfig(per_query_bound_fraction=bad)

    def test_accepts_valid_per_query_bound_fraction(self):
        assert MemoryConfig(per_query_bound_fraction=0.5).per_query_bound_fraction == 0.5
        assert MemoryConfig(per_query_bound_fraction=1.0).per_query_bound_fraction == 1.0
        assert MemoryConfig().per_query_bound_fraction is None


class TestUtilization:
    def test_used_bytes_sums_queries(self):
        model = MemoryModel(MemoryConfig(capacity_bytes=1_000_000))
        queries = [loaded_query(100), loaded_query(200)]
        assert model.used_bytes(queries) == pytest.approx(30_000)

    def test_utilization_fraction(self):
        model = MemoryModel(MemoryConfig(capacity_bytes=100_000))
        assert model.utilization([loaded_query(100)]) == pytest.approx(0.1)

    def test_backpressure_at_threshold(self):
        model = MemoryModel(
            MemoryConfig(capacity_bytes=10_000, backpressure_threshold=0.9)
        )
        assert not model.backpressured([loaded_query(80)])
        assert model.backpressured([loaded_query(90)])


class TestPressureTax:
    def make(self, start=0.05, full=0.35, mx=0.30):
        return MemoryModel(
            MemoryConfig(
                pressure_tax_start=start,
                pressure_tax_full=full,
                pressure_tax_max=mx,
            )
        )

    def test_no_tax_below_start(self):
        assert self.make().pressure_tax(0.04) == 0.0
        assert self.make().pressure_tax(0.05) == 0.0

    def test_tax_saturates_at_full(self):
        model = self.make()
        assert model.pressure_tax(0.35) == pytest.approx(0.30)
        assert model.pressure_tax(0.99) == pytest.approx(0.30)

    def test_tax_is_monotone(self):
        model = self.make()
        taxes = [model.pressure_tax(u) for u in (0.1, 0.2, 0.3, 0.4)]
        assert taxes == sorted(taxes)

    def test_quadratic_ramp(self):
        model = self.make(start=0.0, full=1.0, mx=0.4)
        assert model.pressure_tax(0.5) == pytest.approx(0.4 * 0.25)


class TestPerQueryBound:
    def test_disabled_by_default(self):
        model = MemoryModel()
        assert not model.query_stalled(loaded_query(10_000_000))

    def test_bound_stalls_heavy_query(self):
        cfg = MemoryConfig(capacity_bytes=1_000_000, per_query_bound_fraction=0.01)
        model = MemoryModel(cfg)
        assert not model.query_stalled(loaded_query(50))     # 5 KB < 10 KB
        assert model.query_stalled(loaded_query(200))        # 20 KB >= 10 KB
