"""Unit tests for Klink's memory-management prefix selection (Sec. 3.4)."""

import pytest

from repro.core.memory_policy import best_prefix
from repro.spe.events import EventBatch, Watermark
from tests.helpers import make_simple_query


def enqueue(op, count, t0=0.0, t1=100.0):
    op.inputs[0].push(EventBatch(count=count, t_start=t0, t_end=t1), 0.0)


class TestBestPrefix:
    def test_none_when_no_queued_events(self):
        q = make_simple_query()
        assert best_prefix(q, 120.0) is None

    def test_prefix_extends_through_low_selectivity_window(self):
        # Once the window's measured selectivity is low (it absorbed events
        # without firing), the maximal-removal prefix runs through it.
        q = make_simple_query(selectivity=0.5)
        window = q.windowed_operators()[0]
        enqueue(window, 100)
        window.step(1e9, 0.0)  # absorb into pane state: measured sel ~ 0
        enqueue(q.operators[0], 90)
        plan = best_prefix(q, 120.0)
        assert window in plan.operators

    def test_removal_counts_filtered_mass(self):
        q = make_simple_query(selectivity=0.25)
        filt = q.operators[0]
        # Teach the filter its selectivity first.
        enqueue(filt, 100)
        filt.step(1e9, 0.0)
        q.operators[1].step(1e9, 0.0)
        enqueue(filt, 100)
        plan = best_prefix(q, 1e9)
        # 100 queued at the filter: at least 75 are removed by the filter
        # alone; the window absorbs the rest.
        assert plan.total_removal >= 75.0

    def test_pending_cost_positive(self):
        q = make_simple_query(cost_ms=0.5)
        enqueue(q.operators[0], 10)
        plan = best_prefix(q, 120.0)
        assert plan.pending_cost_ms > 0

    def test_achievable_removal_scales_with_cycle(self):
        q = make_simple_query(cost_ms=1.0, selectivity=0.5)
        enqueue(q.operators[0], 1000)  # 1000 ms of work at the filter
        plan = best_prefix(q, 120.0)
        achievable_short = plan.achievable_removal(120.0)
        achievable_long = plan.achievable_removal(1e9)
        assert achievable_short < achievable_long
        assert achievable_long == pytest.approx(plan.total_removal)

    def test_achievable_removal_with_zero_cost(self):
        q = make_simple_query(cost_ms=0.0, selectivity=0.5)
        enqueue(q.operators[0], 100)
        plan = best_prefix(q, 120.0)
        assert plan.achievable_removal(120.0) == plan.total_removal

    def test_worthwhile_flag(self):
        q = make_simple_query(selectivity=0.5)
        enqueue(q.operators[0], 100)
        assert best_prefix(q, 120.0).worthwhile

    def test_longer_prefix_never_removes_less(self):
        q = make_simple_query(selectivity=0.5)
        enqueue(q.operators[0], 50)
        enqueue(q.windowed_operators()[0], 50)
        plan = best_prefix(q, 120.0)
        # The chosen prefix's removal is maximal over all prefixes; the
        # whole pipeline's removal can't exceed it.
        ops = q.operators
        assert plan.total_removal >= 0.5 * 50  # at least the filter's share
