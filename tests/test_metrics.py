"""Unit tests for metrics aggregation."""

import math

import numpy as np
import pytest

from repro.spe.metrics import (
    RunMetrics,
    UtilizationSample,
    cdf_points,
    mean_with_ci,
    percentile,
)


class TestPercentileHelpers:
    def test_percentile_basic(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_cdf_points_structure(self):
        pts = cdf_points([1.0, 2.0, 3.0, 4.0], [25, 50, 75])
        assert [p for p, _ in pts] == [25, 50, 75]
        assert pts[1][1] == pytest.approx(2.5)

    def test_cdf_points_empty(self):
        pts = cdf_points([], [50])
        assert math.isnan(pts[0][1])

    def test_percentile_accepts_numpy_array(self):
        # regression: `if not values` raises "truth value of an array is
        # ambiguous" for numpy arrays with more than one element
        assert percentile(np.array([1.0, 2.0, 3.0]), 50) == 2.0

    def test_percentile_empty_numpy_array_is_nan(self):
        assert math.isnan(percentile(np.array([]), 50))

    def test_percentile_accepts_tuple_and_generator_backed_input(self):
        assert percentile((5.0, 1.0, 3.0), 50) == 3.0

    def test_cdf_points_accepts_numpy_array(self):
        pts = cdf_points(np.array([1.0, 2.0, 3.0, 4.0]), [50])
        assert pts[0][1] == pytest.approx(2.5)

    def test_cdf_points_empty_numpy_array(self):
        pts = cdf_points(np.array([]), [25, 75])
        assert [p for p, _ in pts] == [25, 75]
        assert all(math.isnan(v) for _, v in pts)

    def test_cdf_points_no_percentiles(self):
        assert cdf_points([1.0, 2.0], []) == []

    def test_cdf_points_matches_percentile(self):
        values = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        pts = cdf_points(values, [10, 50, 90])
        for pct, v in pts:
            assert v == pytest.approx(percentile(values, pct))


class TestRunMetrics:
    def make(self):
        m = RunMetrics(duration_ms=10_000.0)
        m.swm_latencies = [100.0, 200.0, 300.0, 400.0]
        m.slowdowns = [10.0, 20.0]
        m.total_events_processed = 50_000.0
        m.samples = [
            UtilizationSample(time=t, memory_bytes=b, cpu_fraction=c,
                              events_processed=0.0)
            for t, b, c in [(0, 100, 0.5), (1, 200, 0.7), (2, 300, 0.9)]
        ]
        return m

    def test_mean_latency(self):
        assert self.make().mean_latency_ms == pytest.approx(250.0)

    def test_mean_latency_empty_is_nan(self):
        assert math.isnan(RunMetrics().mean_latency_ms)

    def test_latency_percentile(self):
        assert self.make().latency_percentile(100) == 400.0

    def test_throughput(self):
        assert self.make().throughput_eps == pytest.approx(5000.0)

    def test_throughput_zero_duration(self):
        assert RunMetrics().throughput_eps == 0.0

    def test_mean_slowdown(self):
        assert self.make().mean_slowdown == pytest.approx(15.0)

    def test_memory_stats(self):
        m = self.make()
        assert m.mean_memory_bytes == pytest.approx(200.0)
        assert m.memory_percentile(100) == 300.0

    def test_cpu_stats(self):
        m = self.make()
        assert m.mean_cpu_fraction == pytest.approx(0.7)
        assert m.cpu_percentile(0) == pytest.approx(0.5)

    def test_overhead_fraction_zero_when_no_overhead(self):
        assert self.make().overhead_fraction == 0.0

    def test_overhead_fraction_bounded(self):
        m = self.make()
        m.busy_cpu_ms = 10_000.0
        m.scheduler_overhead_ms = 700.0
        assert 0.0 < m.overhead_fraction < 1.0
        assert m.overhead_fraction == pytest.approx(700.0 / 10_700.0)

    def test_summary_keys(self):
        summary = self.make().summary()
        for key in (
            "mean_latency_ms",
            "p90_latency_ms",
            "p99_latency_ms",
            "throughput_eps",
            "mean_slowdown",
            "mean_memory_gb",
            "mean_cpu_pct",
            "overhead_pct",
        ):
            assert key in summary


class TestMeanWithCI:
    def test_single_value(self):
        mean, half = mean_with_ci([5.0])
        assert mean == 5.0 and half == 0.0

    def test_empty(self):
        mean, half = mean_with_ci([])
        assert math.isnan(mean) and math.isnan(half)

    def test_interval_contains_truth_for_tight_samples(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(100.0, 5.0, size=30)
        mean, half = mean_with_ci(samples)
        assert abs(mean - 100.0) < half + 3.0
        assert half > 0

    def test_wider_confidence_widens_interval(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        _, half95 = mean_with_ci(samples, confidence=0.95)
        _, half99 = mean_with_ci(samples, confidence=0.99)
        assert half99 > half95

    def test_half_width_is_student_t(self):
        # Pin the documented contract: the half-width is the standard
        # error scaled by the Student-t critical value with n-1 degrees
        # of freedom, not the normal z. For [1..5]: sem = sqrt(0.5) and
        # t.ppf(0.975, 4) = 2.7764451..., so half = 1.96324...; the
        # normal approximation (z = 1.95996) would give 1.38590.
        from scipy import stats

        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        mean, half = mean_with_ci(samples, confidence=0.95)
        sem = float(stats.sem(np.asarray(samples, dtype=float)))
        expected = sem * float(stats.t.ppf(0.975, 4))
        assert mean == 3.0
        assert half == expected
        assert half == pytest.approx(1.9632431615, abs=1e-9)
        z_half = sem * float(stats.norm.ppf(0.975))
        assert half > z_half * 1.4  # clearly t, not the normal z
