"""Tests for the observability layer (repro.obs): scheduler-decision
audit trail, per-operator profiling, streaming exporters, run reports,
and the documented JSON schemas."""

import json
import math

import pytest

from repro.core.baselines import (
    DefaultScheduler,
    FCFSScheduler,
    HighestRateScheduler,
    RoundRobinScheduler,
    StreamBoxScheduler,
)
from repro.core.classes import ClassBasedScheduler
from repro.core.klink import KlinkScheduler
from repro.core.scheduler import Allocation, Plan, SchedulerContext
from repro.obs import (
    AuditLog,
    DecisionExplainer,
    KNOWN_REASONS,
    OperatorProfiler,
    QueryDecision,
    Trace,
    TraceWriter,
    build_report,
    dumps_line,
    explain_with_fallback,
    jsonify,
    read_trace,
    render_text,
)
from repro.obs.export import CsvWriter, JsonlWriter
from repro.obs.schema import (
    SchemaError,
    validate_cycle,
    validate_operator,
    validate_report,
)
from repro.spe.engine import Engine
from tests.helpers import make_simple_query


def run_audited(scheduler, *, n_queries=3, duration=6_000.0, seed=1,
                max_rows=50_000, stream=None, profiler=None):
    queries = [
        make_simple_query(f"q{i}", rate_eps=500.0, seed=seed + i)
        for i in range(n_queries)
    ]
    audit = AuditLog(max_rows=max_rows, stream=stream)
    engine = Engine(queries, scheduler, cores=4, cycle_ms=100.0,
                    seed=seed, audit=audit, profiler=profiler)
    metrics = engine.run(duration)
    return audit, metrics, queries


ALL_POLICIES = [
    KlinkScheduler,
    DefaultScheduler,
    FCFSScheduler,
    RoundRobinScheduler,
    HighestRateScheduler,
    StreamBoxScheduler,
]


class TestDecisionExplainers:
    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_every_policy_explains_its_plan(self, factory):
        audit, _, _ = run_audited(factory())
        assert len(audit) > 0
        for record in audit.rows:
            ranks = [d.rank for d in record.decisions]
            assert ranks == list(range(len(ranks)))
            for d in record.decisions:
                assert d.reason in KNOWN_REASONS

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_policies_satisfy_protocol(self, factory):
        assert isinstance(factory(), DecisionExplainer)

    def test_klink_reports_slack_and_delay_moments(self):
        audit, _, _ = run_audited(KlinkScheduler())
        late = audit.rows[-1]  # estimator warmed up by the last cycle
        slacks = [d.slack_ms for d in late.decisions]
        assert any(s is not None for s in slacks)
        assert any(d.swm_delay_mean_ms is not None for d in late.decisions)
        # least-slack order: finite slack values are non-decreasing by rank
        finite = [s for s in slacks if s is not None]
        assert finite == sorted(finite)

    def test_default_reports_processor_share(self):
        audit, _, _ = run_audited(DefaultScheduler())
        assert set(audit.reason_counts()) == {"processor-share"}

    def test_fcfs_score_is_arrival_time(self):
        audit, _, _ = run_audited(FCFSScheduler())
        scored = [
            d.score
            for record in audit.rows
            for d in record.decisions
            if d.score is not None
        ]
        assert scored, "FCFS should expose oldest-arrival scores"
        assert all(s >= 0 for s in scored)

    def test_class_based_reranks_inner_decisions(self):
        inner = FCFSScheduler()
        scheduler = ClassBasedScheduler(inner, {"q0": 1, "q1": 0, "q2": 0})
        audit, _, _ = run_audited(scheduler)
        for record in audit.rows:
            ids = [d.query_id for d in record.decisions]
            if "q0" in ids:
                # class 1 always runs after the class-0 queries
                assert ids.index("q0") == len(ids) - 1
            assert [d.rank for d in record.decisions] == list(range(len(ids)))

    def test_fallback_for_protocol_less_policy(self):
        class Opaque:
            def plan(self, ctx):  # pragma: no cover - not called here
                raise NotImplementedError

        q = make_simple_query("q0")
        plan = Plan([Allocation(q)], mode="priority")
        ctx = SchedulerContext(now=0.0, cycle_ms=100.0, cores=2, queries=[q])
        decisions = explain_with_fallback(Opaque(), ctx, plan)
        assert [d.reason for d in decisions] == ["priority-order"]

    def test_klink_memory_mode_reasons(self):
        q = make_simple_query("q0")
        scheduler = KlinkScheduler()
        scheduler._mm_active = True
        ctx = SchedulerContext(now=0.0, cycle_ms=100.0, cores=2, queries=[q])
        prefix_plan = Plan([Allocation(q, [q.operators[0]])], mode="priority")
        full_plan = Plan([Allocation(q)], mode="priority")
        assert scheduler.explain_plan(ctx, prefix_plan)[0].reason == "memory-release"
        assert scheduler.explain_plan(ctx, full_plan)[0].reason == "memory-mode-full"


class TestAuditLog:
    def test_rejects_bad_max_rows(self):
        with pytest.raises(ValueError):
            AuditLog(max_rows=0)

    def test_eviction_keeps_memory_bounded(self):
        audit, _, _ = run_audited(DefaultScheduler(), max_rows=5)
        assert len(audit) == 5
        assert audit.records_seen > 5
        # retained rows are the most recent ones
        cycles = [r.cycle for r in audit.rows]
        assert cycles == sorted(cycles)
        assert cycles[-1] == audit.records_seen - 1

    def test_stream_sees_evicted_records(self):
        collected = []

        class Collector:
            def write(self, row):
                collected.append(row)

        audit, _, _ = run_audited(
            DefaultScheduler(), max_rows=2, stream=Collector()
        )
        assert len(collected) == audit.records_seen > 2

    def test_seeded_reruns_are_byte_identical(self):
        first, _, _ = run_audited(KlinkScheduler(), seed=7)
        second, _, _ = run_audited(KlinkScheduler(), seed=7)
        a, b = first.to_jsonl_str(), second.to_jsonl_str()
        assert a and a == b

    def test_different_configs_differ(self):
        def run(delay_ms):
            q = make_simple_query("q0", rate_eps=500.0, delay_ms=delay_ms)
            audit = AuditLog()
            Engine([q], KlinkScheduler(), cores=4, cycle_ms=100.0,
                   seed=1, audit=audit).run(6_000.0)
            return audit.to_jsonl_str()

        assert run(0.0) != run(200.0)

    def test_jsonl_rows_validate_against_cycle_schema(self, tmp_path):
        audit, _, _ = run_audited(KlinkScheduler())
        path = tmp_path / "audit.jsonl"
        audit.to_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == len(audit)
        for line in lines:
            validate_cycle(json.loads(line))

    def test_head_query_counts_sum_to_rows(self):
        audit, _, _ = run_audited(KlinkScheduler())
        assert sum(audit.head_query_counts().values()) == len(audit)

    @staticmethod
    def _feed_flags(audit, flags, throttles=None):
        """Drive on_cycle with (backpressured, throttled) flag sequences."""

        class Stub:
            name = "stub"

            def plan(self, ctx):  # pragma: no cover
                raise NotImplementedError

        q = make_simple_query("q0")
        ctx = SchedulerContext(now=0.0, cycle_ms=100.0, cores=1, queries=[q])
        throttles = throttles or [False] * len(flags)
        for i, (bp, thr) in enumerate(zip(flags, throttles)):
            audit.on_cycle(
                time=float(i * 100), cycle=i, scheduler=Stub(), ctx=ctx,
                plan=Plan([Allocation(q)], throttle_ingestion=thr),
                backpressured=bp, cpu_used_ms=0.0, overhead_ms=0.0,
            )
        return audit

    def test_mode_episodes_from_flags(self):
        audit = self._feed_flags(
            AuditLog(max_rows=10), [False, True, True, False]
        )
        assert audit.mode_episodes() == [(100.0, 200.0, "backpressure")]

    def test_mode_episode_open_at_end_of_run_is_closed(self):
        """An episode still active at the last retained record must be
        emitted, closed at that record's time (not silently dropped)."""
        audit = self._feed_flags(
            AuditLog(max_rows=10), [False, True, True]
        )
        assert audit.mode_episodes() == [(100.0, 200.0, "backpressure")]
        # degenerate single-cycle episode at the very end
        audit = self._feed_flags(AuditLog(max_rows=10), [False, False, True])
        assert audit.mode_episodes() == [(200.0, 200.0, "backpressure")]

    def test_mode_episodes_overlapping_kinds_are_separate_spans(self):
        audit = self._feed_flags(
            AuditLog(max_rows=10),
            [False, True, True, False],
            throttles=[False, False, True, True],
        )
        assert audit.mode_episodes() == [
            (100.0, 200.0, "backpressure"),
            (200.0, 300.0, "throttle"),
        ]

    def test_mode_episodes_after_max_rows_eviction(self):
        """With max_rows smaller than the run, episodes are computed over
        the retained window only: an episode whose start was evicted is
        reported from the earliest retained record, and a disk stream
        attached to the log still sees every record."""
        rows = []

        class ListStream:
            def write(self, row):
                rows.append(row)

        flags = [True, True, False, False, True, True]
        audit = self._feed_flags(
            AuditLog(max_rows=3, stream=ListStream()), flags
        )
        assert len(audit) == 3  # memory stays bounded
        assert audit.records_seen == len(flags)
        assert len(rows) == len(flags)  # stream kept the evicted records
        # retained window is cycles 3..5 -> only the trailing episode,
        # closed at the final retained record
        assert audit.mode_episodes() == [(400.0, 500.0, "backpressure")]
        # a full-history log over the same flags sees the evicted episode
        full = self._feed_flags(AuditLog(max_rows=50), flags)
        assert full.mode_episodes() == [
            (0.0, 100.0, "backpressure"),
            (400.0, 500.0, "backpressure"),
        ]


class TestOperatorProfiler:
    def test_profiles_published_through_run_metrics(self):
        profiler = OperatorProfiler()
        _, metrics, queries = run_audited(
            KlinkScheduler(), profiler=profiler
        )
        profiles = metrics.operator_profiles
        assert len(profiles) == sum(len(q.operators) for q in queries)
        assert any(p.cpu_ms > 0 for p in profiles)
        assert any(p.events_in > 0 for p in profiles)
        for p in profiles:
            validate_operator(jsonify(p.to_dict()))

    def test_chain_profiles_aggregate_members(self):
        profiler = OperatorProfiler()
        _, metrics, queries = run_audited(
            DefaultScheduler(), profiler=profiler
        )
        chains = profiler.chain_profiles(queries)
        assert [c.query_id for c in chains] == [q.query_id for q in queries]
        by_query = {}
        for p in metrics.operator_profiles:
            by_query[p.query_id] = by_query.get(p.query_id, 0.0) + p.cpu_ms
        for chain in chains:
            assert chain.cpu_ms == pytest.approx(by_query[chain.query_id])
            assert chain.hottest_cpu_ms <= chain.cpu_ms + 1e-9

    def test_high_water_marks_are_maxima(self):
        profiler = OperatorProfiler()
        _, metrics, _ = run_audited(DefaultScheduler(), profiler=profiler)
        assert profiler.cycles_sampled > 0
        assert all(p.queued_events_hwm >= 0 for p in metrics.operator_profiles)
        assert any(
            p.queued_events_hwm > 0 or p.state_bytes_hwm > 0
            for p in metrics.operator_profiles
        )


class TestExportPrimitives:
    def test_jsonify_maps_non_finite_to_null(self):
        out = jsonify({"a": math.nan, "b": [math.inf, 1.0], "c": {"d": -math.inf}})
        assert out == {"a": None, "b": [None, 1.0], "c": {"d": None}}

    def test_dumps_line_is_compact_and_ordered(self):
        line = dumps_line({"b": 1, "a": math.nan})
        assert line == '{"b":1,"a":null}'

    def test_jsonl_writer_bounded_and_reopenable(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with JsonlWriter(str(path), flush_every=2) as writer:
            for i in range(5):
                writer.write({"i": i})
        assert writer.rows_written == 5
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert rows == [{"i": i} for i in range(5)]
        with pytest.raises(ValueError):
            writer.write({"i": 99})

    def test_jsonl_writer_rejects_bad_flush(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlWriter(str(tmp_path / "x.jsonl"), flush_every=0)

    def test_csv_writer_round_trip(self, tmp_path):
        path = tmp_path / "rows.csv"
        with CsvWriter(str(path), ["a", "b"]) as writer:
            writer.write({"a": 1, "b": 2, "ignored": 3})
            writer.write({"a": 4})
        lines = path.read_text().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"
        assert lines[2] == "4,"

    def test_csv_writer_needs_fields(self, tmp_path):
        with pytest.raises(ValueError):
            CsvWriter(str(tmp_path / "x.csv"), [])


class TestTraceContainer:
    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(str(path), meta={"workload": "ysb"})
        writer.write({"time": 100.0, "cycle": 0, "decisions": []})
        writer.finalize(
            operators=[{"query_id": "q0", "name": "q0.map"}],
            chains=[{"query_id": "q0"}],
            summary={"mean_latency_ms": 1.5, "latency_cdf": [[50, 1.0]]},
        )
        trace = read_trace(str(path))
        assert trace.meta["workload"] == "ysb"
        assert trace.meta["schema_version"] == 3
        assert len(trace.cycles) == 1 and trace.cycles[0]["cycle"] == 0
        assert trace.operators[0]["name"] == "q0.map"
        assert trace.chains[0]["query_id"] == "q0"
        assert trace.summary["mean_latency_ms"] == 1.5

    def test_finalize_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(str(path), meta={})
        writer.finalize(summary={"x": 1})
        writer.finalize(summary={"x": 2})  # ignored
        trace = read_trace(str(path))
        assert trace.summary == {"x": 1}

    def test_read_trace_rejects_unknown_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"mystery"}\n')
        with pytest.raises(ValueError, match="unknown record type"):
            read_trace(str(path))

    def test_read_trace_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            read_trace(str(path))

    def test_audit_streams_into_trace_writer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(str(path), meta={"scheduler": "Klink"})
        profiler = OperatorProfiler()
        _, metrics, queries = run_audited(
            KlinkScheduler(), stream=writer, profiler=profiler, max_rows=3
        )
        writer.finalize(
            operators=[p.to_dict() for p in metrics.operator_profiles],
            chains=[c.to_dict() for c in profiler.chain_profiles(queries)],
            summary={"cycles": metrics.cycles},
        )
        trace = read_trace(str(path))
        # the stream received every cycle even though the deque kept 3
        assert len(trace.cycles) == metrics.cycles > 3
        assert len(trace.operators) == len(metrics.operator_profiles)
        for row in trace.cycles:
            validate_cycle(row)


def synthetic_trace():
    def cycle(i, *, bp=False, reason="slack-order"):
        return {
            "time": 100.0 * (i + 1),
            "cycle": i,
            "node": 0,
            "policy": "Klink",
            "mode": "priority",
            "backpressured": bp,
            "throttled": False,
            "memory_utilization": 0.1,
            "cpu_used_ms": 10.0,
            "overhead_ms": 0.5,
            "decisions": [
                {
                    "query_id": "q0",
                    "rank": 0,
                    "reason": reason,
                    "slack_ms": 5.0,
                    "swm_delay_mean_ms": 100.0,
                    "swm_delay_std_ms": 1.0,
                    "score": 5.0,
                    "memory_bytes": 10.0,
                    "queued_events": 2.0,
                }
            ],
        }

    cycles = [
        cycle(0),
        cycle(1, bp=True),
        cycle(2, bp=True, reason="memory-release"),
        cycle(3),
    ]
    operator = {
        "query_id": "q0", "name": "q0.map", "kind": "MapOperator",
        "cpu_ms": 12.0, "events_in": 100.0, "events_out": 50.0,
        "watermarks_seen": 3, "panes_fired": 1, "late_events_dropped": 0.0,
        "queued_events_hwm": 4.0, "queued_bytes_hwm": 256.0,
        "state_bytes_hwm": 0.0,
    }
    chain = {
        "query_id": "q0", "n_operators": 1, "cpu_ms": 12.0,
        "events_in": 100.0, "events_delivered": 50.0,
        "late_events_dropped": 0.0, "queued_events_hwm": 4.0,
        "memory_bytes_hwm": 256.0, "hottest_operator": "q0.map",
        "hottest_cpu_ms": 12.0,
    }
    summary = {"mean_latency_ms": 123.0, "latency_cdf": [[50.0, 100.0], [99.0, 200.0]]}
    return Trace(
        meta={"workload": "ysb", "scheduler": "Klink"},
        cycles=cycles,
        operators=[operator],
        chains=[chain],
        summary=summary,
    )


class TestRunReport:
    def test_timeline_counts(self):
        report = build_report(synthetic_trace())
        tl = report.decision_timeline
        assert tl["cycles"] == 4
        assert tl["backpressure_cycles"] == 2
        assert tl["reason_counts"] == {"memory-release": 1, "slack-order": 3}
        assert tl["head_query_counts"] == {"q0": 4}

    def test_episode_detection(self):
        report = build_report(synthetic_trace())
        kinds = {(e.kind, e.start, e.end, e.cycles) for e in report.episodes}
        assert ("backpressure", 200.0, 300.0, 2) in kinds
        assert ("memory-mode", 300.0, 300.0, 1) in kinds

    def test_latency_cdf_extracted_from_summary(self):
        report = build_report(synthetic_trace())
        assert report.latency_cdf == [(50.0, 100.0), (99.0, 200.0)]
        assert "latency_cdf" not in report.summary

    def test_top_k_limits_operators(self):
        trace = synthetic_trace()
        second = dict(trace.operators[0], name="q0.hot", cpu_ms=99.0)
        trace.operators.append(second)
        report = build_report(trace, top_k=1)
        assert [op["name"] for op in report.hottest_operators] == ["q0.hot"]

    def test_rejects_bad_top_k(self):
        with pytest.raises(ValueError):
            build_report(synthetic_trace(), top_k=0)

    def test_json_output_validates(self):
        report = build_report(synthetic_trace())
        validate_report(json.loads(report.to_json()))

    def test_render_text_sections(self):
        text = render_text(build_report(synthetic_trace()))
        assert "run report: ysb/Klink" in text
        assert "decision timeline" in text
        assert "hottest operators" in text
        assert "q0.map" in text

    def test_report_from_real_run(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(str(path), meta={"workload": "test", "scheduler": "Klink"})
        profiler = OperatorProfiler()
        _, metrics, queries = run_audited(
            KlinkScheduler(), stream=writer, profiler=profiler
        )
        writer.finalize(
            operators=[p.to_dict() for p in metrics.operator_profiles],
            chains=[c.to_dict() for c in profiler.chain_profiles(queries)],
            summary={"latency_cdf": [list(p) for p in metrics.latency_cdf()]},
        )
        report = build_report(read_trace(str(path)))
        validate_report(json.loads(report.to_json()))
        assert report.decision_timeline["cycles"] == metrics.cycles


class TestSchemaValidator:
    def test_missing_key_reports_path(self):
        row = synthetic_trace().cycles[0]
        del row["policy"]
        with pytest.raises(SchemaError, match=r"\$\.policy"):
            validate_cycle(row)

    def test_bool_is_not_a_number(self):
        op = dict(synthetic_trace().operators[0], cpu_ms=True)
        with pytest.raises(SchemaError, match="bool"):
            validate_operator(op)

    def test_nested_decision_mismatch(self):
        row = synthetic_trace().cycles[0]
        row["decisions"][0]["rank"] = "first"
        with pytest.raises(SchemaError, match=r"decisions\[0\]\.rank"):
            validate_cycle(row)

    def test_decision_dict_matches_schema_keys(self):
        from repro.obs.schema import DECISION_SCHEMA

        d = QueryDecision(query_id="q", rank=0, reason="slack-order")
        assert list(d.to_dict()) == list(DECISION_SCHEMA)
