"""Regression tests for the engine hot paths.

Two scheduler-facing reads used to be O(state) per call: a windowed
operator's ``next_deadline`` rebuilt and scanned the whole pane table,
and ``queued_events``/``queued_bytes`` re-summed every input channel on
every read. Both are called several times per operator per scheduling
cycle. These tests pin the optimized behaviour: deadline reads peek a
maintained min-heap without touching the pane dictionaries, and queue
aggregates are memoized until a channel actually mutates — while staying
observably identical to the naive computation.
"""

import math

import pytest

from repro.spe.events import EventBatch, Watermark
from repro.spe.operators import MapOperator, SinkOperator, WindowedAggregate
from repro.spe.windows import TumblingEventTimeWindows


class GuardDict(dict):
    """A dict that forbids whole-table scans but allows point access."""

    def _scan(self, *args, **kwargs):
        raise AssertionError(
            "O(n) scan of the pane table on a hot path"
        )

    __iter__ = _scan
    keys = _scan
    values = _scan
    items = _scan
    copy = _scan


def windowed(n_panes=200, size_ms=100.0):
    """A windowed aggregate with ``n_panes`` buffered panes."""
    op = WindowedAggregate(
        "w", TumblingEventTimeWindows(size_ms), cost_per_event_ms=0.0
    )
    op.connect(SinkOperator("s"))
    span = n_panes * size_ms
    op._on_batch(
        EventBatch(count=float(n_panes), t_start=0.0, t_end=span), 0, 0.0
    )
    assert len(op._pane_ends) == n_panes
    return op


class TestNextDeadlineIsO1:
    def test_deadline_reads_never_scan_the_pane_table(self):
        op = windowed()
        # From here on, any whole-table iteration over the pane dicts
        # (what the pre-heap implementation did per call) fails loudly.
        op._panes = GuardDict(op._panes)
        op._pane_ends = GuardDict(op._pane_ends)
        first = op.next_deadline(0.0)
        assert first == 100.0
        for _ in range(50):
            assert op.next_deadline(0.0) == first
        assert len(op._pane_heap) == 200  # peeked, not popped

    def test_deadline_tracks_firing(self):
        op = windowed(n_panes=10)
        op._on_watermark(Watermark(450.0, source_id=0), 0, 0.0)
        assert op.next_deadline(0.0) == 500.0
        assert op.stats.panes_fired == 4  # ends 100..400

    def test_heap_and_pane_table_stay_lockstep(self):
        op = windowed(n_panes=20)
        op._on_watermark(Watermark(777.0, source_id=0), 0, 0.0)
        assert len(op._pane_heap) == len(op._pane_ends)
        assert {s for _, s in op._pane_heap} == set(op._pane_ends)
        for end, start in op._pane_heap:
            assert op._pane_ends[start] == end
            assert end > 777.0  # every due pane was popped

    def test_pending_deadlines_sorted_and_complete(self):
        op = windowed(n_panes=5)
        pending = op.pending_pane_deadlines()
        assert pending == sorted(pending)
        assert pending == [100.0, 200.0, 300.0, 400.0, 500.0]

    def test_empty_operator_falls_back_to_assigner(self):
        op = WindowedAggregate(
            "w", TumblingEventTimeWindows(100.0), cost_per_event_ms=0.0
        )
        assert op.next_deadline(250.0) == 300.0

    def test_late_pane_not_reinserted(self):
        op = windowed(n_panes=4)
        op._on_watermark(Watermark(250.0, source_id=0), 0, 0.0)
        heap_len = len(op._pane_heap)
        # Entirely-late batch: dropped, never re-buffered into the heap.
        op._on_batch(EventBatch(count=5.0, t_start=0.0, t_end=200.0), 0, 0.0)
        assert len(op._pane_heap) == heap_len
        assert op.stats.late_events_dropped == 5.0


class TestQueueMemoization:
    def test_matches_direct_sum_after_each_mutation(self):
        op = MapOperator("m", 0.01)

        def direct_events():
            return sum(ch.queued_events for ch in op.inputs)

        def direct_bytes():
            return sum(ch.queued_bytes for ch in op.inputs)

        assert op.queued_events == direct_events() == 0.0
        op.inputs[0].push(EventBatch(count=10, t_start=0.0, t_end=1.0), 0.0)
        assert op.queued_events == direct_events() == 10.0
        assert op.queued_bytes == direct_bytes() > 0.0
        op.inputs[0].push(EventBatch(count=5, t_start=1.0, t_end=2.0), 0.0)
        assert op.queued_events == direct_events() == 15.0
        op.inputs[0].pop()
        assert op.queued_events == direct_events() == 5.0
        op.inputs[0].clear()
        assert op.queued_events == direct_events() == 0.0
        assert op.queued_bytes == direct_bytes() == 0.0

    def test_latency_release_invalidates(self):
        op = MapOperator("m", 0.01)
        channel = op.inputs[0]
        channel.latency_ms = 50.0
        channel.push(EventBatch(count=8, t_start=0.0, t_end=1.0), 0.0)
        # Still in flight: the memo must reflect the empty ready queue.
        assert op.queued_events == 0.0
        channel.release(60.0)
        assert op.queued_events == 8.0

    def test_push_front_invalidates(self):
        op = MapOperator("m", 0.01)
        op.inputs[0].push(EventBatch(count=3, t_start=0.0, t_end=1.0), 0.0)
        assert op.queued_events == 3.0
        op.inputs[0].push_front(
            EventBatch(count=2, t_start=0.0, t_end=1.0), 0.0
        )
        assert op.queued_events == 5.0

    def test_watermarks_do_not_count_as_events(self):
        op = MapOperator("m", 0.01)
        op.inputs[0].push(Watermark(100.0, source_id=0), 0.0)
        assert op.queued_events == 0.0
        assert op.has_work()

    def test_step_consumption_updates_memo(self):
        op = MapOperator("m", 1.0)
        op.connect(SinkOperator("s"))
        op.inputs[0].push(EventBatch(count=10, t_start=0.0, t_end=1.0), 0.0)
        assert op.queued_events == 10.0
        op.step(4.0, now=0.0)  # budget for 4 of the 10 events
        assert op.queued_events == pytest.approx(6.0)

    def test_memo_reused_between_mutations(self):
        op = MapOperator("m", 0.01)
        op.inputs[0].push(EventBatch(count=7, t_start=0.0, t_end=1.0), 0.0)
        assert op.queued_events == 7.0
        assert not op._queues_dirty
        # A clean read must not re-mark the operator dirty.
        assert op.queued_bytes >= 0.0
        assert not op._queues_dirty
        op.inputs[0].pop()
        assert op._queues_dirty


class TestWindowedStateUnchanged:
    """The heap is an index, not a semantic change: state introspection
    still reports exactly what the pane table holds."""

    def test_state_events_and_bytes(self):
        op = windowed(n_panes=10)
        assert op.state_events == pytest.approx(10.0)
        assert op.state_bytes > 0.0

    def test_fire_emits_into_output(self):
        op = windowed(n_panes=10)
        sink_channel = op.output
        op._on_watermark(Watermark(1050.0, source_id=0), 0, 0.0)
        assert op.stats.panes_fired == 10
        assert sink_channel.queued_events > 0.0
        assert math.isinf(op.next_deadline(0.0)) is False
