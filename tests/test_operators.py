"""Unit tests for stream operators: cost accounting, selectivity, window
firing, SWM flagging, join unblocking, and late-event handling."""

import math

import pytest

from repro.spe.events import EventBatch, LatencyMarker, Watermark
from repro.spe.operators import (
    FilterOperator,
    FlatMapOperator,
    MapOperator,
    SinkOperator,
    WindowedAggregate,
    WindowedJoin,
)
from repro.spe.windows import SlidingEventTimeWindows, TumblingEventTimeWindows


def feed(op, record, now=0.0, input_index=0):
    op.inputs[input_index].push(record, now)


def drain(op, budget=1e9, now=0.0):
    return op.step(budget, now)


def batch(count=10, t0=0.0, t1=100.0, delay=0.0):
    return EventBatch(count=count, t_start=t0, t_end=t1, delay=delay)


class TestStatelessOperators:
    def test_map_preserves_count(self):
        m = MapOperator("m", 0.01)
        sink = SinkOperator("s")
        m.connect(sink)
        feed(m, batch(count=10))
        drain(m)
        assert sink.inputs[0].queued_events == 10

    def test_filter_applies_selectivity(self):
        f = FilterOperator("f", 0.01, selectivity=0.25)
        sink = SinkOperator("s")
        f.connect(sink)
        feed(f, batch(count=100))
        drain(f)
        assert sink.inputs[0].queued_events == pytest.approx(25)

    def test_filter_rejects_expanding_selectivity(self):
        with pytest.raises(ValueError):
            FilterOperator("f", 0.01, selectivity=1.5)

    def test_flatmap_can_expand(self):
        fm = FlatMapOperator("fm", 0.01, selectivity=3.0)
        sink = SinkOperator("s")
        fm.connect(sink)
        feed(fm, batch(count=10))
        drain(fm)
        assert sink.inputs[0].queued_events == pytest.approx(30)

    def test_cost_charged_per_event(self):
        m = MapOperator("m", 0.5)
        feed(m, batch(count=10))
        used = drain(m)
        assert used == pytest.approx(5.0)
        assert m.stats.busy_ms == pytest.approx(5.0)

    def test_budget_splits_batch(self):
        m = MapOperator("m", 1.0)  # 1 ms per event
        sink = SinkOperator("s")
        m.connect(sink)
        feed(m, batch(count=10))
        used = m.step(4.0, now=0.0)
        assert used == pytest.approx(4.0)
        assert sink.inputs[0].queued_events == pytest.approx(4)
        assert m.queued_events == pytest.approx(6)  # remainder requeued

    def test_zero_cost_operator_processes_everything(self):
        m = MapOperator("m", 0.0)
        feed(m, batch(count=1000))
        used = m.step(0.001, now=0.0)
        assert m.queued_events == 0
        assert used == 0.0

    def test_measured_selectivity_converges(self):
        f = FilterOperator("f", 0.01, selectivity=0.5)
        feed(f, batch(count=100))
        drain(f)
        assert f.stats.measured_selectivity == pytest.approx(0.5)

    def test_watermark_forwarded_by_stateless(self):
        m = MapOperator("m", 0.01)
        sink = SinkOperator("s")
        m.connect(sink)
        feed(m, Watermark(42.0))
        drain(m)
        entry = sink.inputs[0].pop()
        assert isinstance(entry.record, Watermark)
        assert entry.record.timestamp == 42.0

    def test_latency_marker_forwarded(self):
        m = MapOperator("m", 0.01)
        sink = SinkOperator("s")
        m.connect(sink)
        feed(m, LatencyMarker(created_at=5.0))
        drain(m)
        assert isinstance(sink.inputs[0].pop().record, LatencyMarker)


class TestWindowedAggregate:
    def make(self, size=1000.0, outputs=5.0, incremental=True):
        w = WindowedAggregate(
            "w",
            TumblingEventTimeWindows(size),
            cost_per_event_ms=0.01,
            output_events_per_pane=outputs,
            state_bytes_per_event=100,
            incremental=incremental,
        )
        sink = SinkOperator("s")
        w.connect(sink)
        return w, sink

    def test_events_buffer_until_watermark(self):
        w, sink = self.make()
        feed(w, batch(count=10, t0=0, t1=900))
        drain(w)
        assert sink.inputs[0].queued_events == 0
        assert w.state_events == pytest.approx(10)

    def test_watermark_fires_due_pane(self):
        w, sink = self.make(outputs=5.0)
        feed(w, batch(count=10, t0=0, t1=900))
        feed(w, Watermark(1000.0))
        drain(w)
        assert sink.inputs[0].queued_events == pytest.approx(5.0)
        assert w.state_events == 0
        assert w.stats.panes_fired == 1

    def test_firing_watermark_is_flagged_swm(self):
        w, sink = self.make()
        feed(w, batch(count=10, t0=0, t1=900))
        feed(w, Watermark(1000.0))
        drain(w)
        records = [sink.inputs[0].pop().record for _ in range(2)]
        assert isinstance(records[0], EventBatch)  # output precedes SWM
        assert isinstance(records[1], Watermark) and records[1].is_swm

    def test_nonfiring_watermark_not_swm(self):
        w, sink = self.make()
        feed(w, Watermark(500.0))  # mid-pane, no deadline covered
        drain(w)
        record = sink.inputs[0].pop().record
        assert isinstance(record, Watermark) and not record.is_swm

    def test_upstream_swm_flag_propagates(self):
        w, sink = self.make()
        feed(w, Watermark(500.0, is_swm=True))
        drain(w)
        assert sink.inputs[0].pop().record.is_swm

    def test_watermark_fires_multiple_due_panes(self):
        w, sink = self.make(outputs=1.0)
        feed(w, batch(count=10, t0=0, t1=2900))
        feed(w, Watermark(3000.0))
        drain(w)
        assert w.stats.panes_fired == 3

    def test_out_of_order_watermark_dropped(self):
        w, sink = self.make()
        feed(w, Watermark(1000.0))
        feed(w, Watermark(500.0))  # regression: dropped
        drain(w)
        wms = [
            e.record
            for e in list(sink.inputs[0])
            if isinstance(e.record, Watermark)
        ]
        assert [wm.timestamp for wm in wms] == [1000.0]

    def test_late_batch_dropped_and_counted(self):
        w, sink = self.make()
        feed(w, Watermark(1000.0))
        feed(w, batch(count=10, t0=0, t1=900))  # entirely before the wm
        drain(w)
        assert w.stats.late_events_dropped == pytest.approx(10)
        assert w.state_events == 0

    def test_partially_late_batch_keeps_fresh_mass(self):
        w, sink = self.make()
        feed(w, Watermark(1000.0))
        feed(w, batch(count=10, t0=500, t1=1500))
        drain(w)
        assert w.stats.late_events_dropped == pytest.approx(5.0)
        assert w.state_events == pytest.approx(5.0)

    def test_pane_output_capped_by_buffered_events(self):
        w, sink = self.make(outputs=100.0)
        feed(w, batch(count=3, t0=0, t1=900))
        feed(w, Watermark(1000.0))
        drain(w)
        assert sink.inputs[0].queued_events == pytest.approx(3.0)

    def test_empty_pane_emits_nothing_but_swm_not_flagged(self):
        w, sink = self.make()
        feed(w, Watermark(1000.0))  # no events buffered, nothing pending
        drain(w)
        record = sink.inputs[0].pop().record
        assert isinstance(record, Watermark)
        assert not record.is_swm

    def test_incremental_state_is_compact(self):
        w_inc, _ = self.make(incremental=True)
        w_raw, _ = self.make(incremental=False)
        for w in (w_inc, w_raw):
            feed(w, batch(count=1000, t0=0, t1=900))
            drain(w)
        assert w_inc.state_bytes < w_raw.state_bytes

    def test_next_deadline_tracks_pending_panes(self):
        w, _ = self.make()
        feed(w, batch(count=1, t0=0, t1=10))
        drain(w)
        assert w.next_deadline(0.0) == 1000.0


class TestWindowedJoin:
    def make(self, n_inputs=2, size=1000.0, slide=None, selectivity=0.1):
        j = WindowedJoin(
            "j",
            SlidingEventTimeWindows(size, slide),
            cost_per_event_ms=0.01,
            n_inputs=n_inputs,
            join_selectivity=selectivity,
        )
        sink = SinkOperator("s")
        j.connect(sink)
        return j, sink

    def test_rejects_single_input(self):
        with pytest.raises(ValueError):
            WindowedJoin(
                "j", TumblingEventTimeWindows(100.0), 0.01, n_inputs=1
            )

    def test_single_stream_watermark_does_not_unblock(self):
        j, sink = self.make()
        feed(j, batch(count=10, t0=0, t1=900), input_index=0)
        feed(j, Watermark(1000.0, source_id=0), input_index=0)
        drain(j)
        assert j.stats.panes_fired == 0
        assert sink.inputs[0].queued_events == 0

    def test_min_watermark_unblocks(self):
        j, sink = self.make(selectivity=0.5)
        feed(j, batch(count=10, t0=0, t1=900), input_index=0)
        feed(j, batch(count=10, t0=0, t1=900), input_index=1)
        feed(j, Watermark(1000.0, source_id=0), input_index=0)
        feed(j, Watermark(1000.0, source_id=1), input_index=1)
        drain(j)
        assert j.stats.panes_fired == 1
        assert sink.inputs[0].queued_events == pytest.approx(10.0)  # 20 * 0.5

    def test_combined_clock_is_minimum(self):
        j, _ = self.make()
        feed(j, Watermark(2000.0), input_index=0)
        feed(j, Watermark(500.0), input_index=1)
        drain(j)
        assert j.event_clock == 500.0

    def test_lagging_stream_holds_later_windows(self):
        # Fig. 4's scenario: top stream sweeps deadline 3, bottom only 2.
        j, _ = self.make(size=1000.0, slide=1000.0)
        feed(j, Watermark(3000.0), input_index=0)
        feed(j, Watermark(2000.0), input_index=1)
        drain(j)
        assert j.event_clock == 2000.0
        feed(j, Watermark(3000.0), input_index=1)
        drain(j)
        assert j.event_clock == 3000.0

    def test_join_buffers_raw_state(self):
        j, _ = self.make()
        feed(j, batch(count=100, t0=0, t1=900), input_index=0)
        drain(j)
        assert j.state_bytes == pytest.approx(100 * j.state_bytes_per_event)

    def test_input_watermark_accessor(self):
        j, _ = self.make()
        feed(j, Watermark(700.0), input_index=1)
        drain(j)
        assert j.input_watermark(1) == 700.0
        assert j.input_watermark(0) == -math.inf


class TestSink:
    def test_records_swm_latency(self):
        sink = SinkOperator("s")
        feed(sink, Watermark(1000.0, is_swm=True), now=1500.0)
        sink.step(1.0, now=1500.0)
        assert sink.swm_latencies == [(1500.0, 500.0)]

    def test_ignores_non_swm_watermarks(self):
        sink = SinkOperator("s")
        feed(sink, Watermark(1000.0), now=1500.0)
        sink.step(1.0, now=1500.0)
        assert sink.swm_latencies == []

    def test_records_marker_latency(self):
        sink = SinkOperator("s")
        feed(sink, LatencyMarker(created_at=100.0), now=350.0)
        sink.step(1.0, now=350.0)
        assert sink.marker_latencies == [(350.0, 250.0)]

    def test_counts_delivered_events(self):
        sink = SinkOperator("s")
        feed(sink, batch(count=7))
        sink.step(1.0, now=0.0)
        assert sink.events_delivered == 7


class TestMultiInputFairness:
    def test_round_robin_across_inputs(self):
        j = WindowedJoin(
            "j", TumblingEventTimeWindows(1000.0), 1.0, n_inputs=2
        )
        feed(j, batch(count=100, t0=0, t1=900), input_index=0)
        feed(j, batch(count=100, t0=0, t1=900), input_index=1)
        j.step(10.0, now=0.0)  # budget for ~10 events total
        # Both inputs made progress.
        assert j.inputs[0].queued_events < 100
        assert j.inputs[1].queued_events < 100
