"""Perf-benchmark harness: snapshot shape, validation, and CLI wiring.

The harness itself is wall-clock-dependent, so these tests assert
structure and invariants (valid snapshot, ordering, bookkeeping), never
absolute timings. Tiny grids keep each timed simulation sub-second.
"""

import json
from dataclasses import replace

import pytest

from repro.bench.perf import (
    PERF_GRID,
    PerfPoint,
    _percentile,
    point_label,
    render_perf,
    run_perf,
)
from repro.bench.runner import ExperimentConfig
from repro.cli import main
from repro.obs.compare import check_snapshot

TINY = ExperimentConfig(
    workload="ysb", scheduler="Default", n_queries=1,
    duration_ms=5_000.0, cores=4, seed=11,
)
TINY_GRID = [TINY, replace(TINY, scheduler="FCFS")]


class TestRunPerf:
    def test_snapshot_is_valid_and_complete(self):
        snapshot = run_perf(grid=TINY_GRID)
        assert check_snapshot(snapshot) == []
        assert snapshot["workload"] == "perf"
        assert snapshot["scheduler"] == "grid"
        assert snapshot["n_queries"] == sum(c.n_queries for c in TINY_GRID)
        assert snapshot["series_count"] == len(TINY_GRID)
        assert snapshot["duration_ms"] == sum(
            c.duration_ms for c in TINY_GRID
        )
        assert snapshot["throughput_eps"] > 0.0
        assert snapshot["repeats"] == 1
        assert "parallel" not in snapshot

    def test_points_and_hottest_operators_agree(self):
        snapshot = run_perf(grid=TINY_GRID)
        labels = {point_label(c) for c in TINY_GRID}
        assert {p["label"] for p in snapshot["points"]} == labels
        hottest = snapshot["hottest_operators"]
        assert {row["name"] for row in hottest} == labels
        cpu = [row["cpu_ms"] for row in hottest]
        assert cpu == sorted(cpu, reverse=True)
        for p in snapshot["points"]:
            assert p["wall_ms"] > 0.0
            assert p["events"] > 0.0
            assert p["events_per_wall_sec"] > 0.0

    def test_latency_percentiles_span_point_walls(self):
        snapshot = run_perf(grid=TINY_GRID)
        walls = sorted(p["wall_ms"] for p in snapshot["points"])
        latency = snapshot["latency_ms"]
        assert walls[0] <= latency["p50"] <= walls[-1]
        assert latency["p50"] <= latency["p90"] <= latency["p99"]
        assert latency["p99"] <= walls[-1]

    def test_parallel_pass_recorded(self):
        snapshot = run_perf(grid=TINY_GRID, jobs=2)
        parallel = snapshot["parallel"]
        assert parallel["jobs"] == 2
        assert parallel["wall_ms"] > 0.0
        assert parallel["speedup"] > 0.0
        assert check_snapshot(snapshot) == []

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_perf(grid=TINY_GRID, repeats=0)
        with pytest.raises(ValueError):
            run_perf(grid=TINY_GRID, jobs=0)
        with pytest.raises(ValueError):
            run_perf(grid=[])

    def test_pinned_grid_shape(self):
        """The default grid is part of the baseline contract."""
        assert len(PERF_GRID) == 4
        assert {point_label(c) for c in PERF_GRID} == {
            "ysb/Default/n20", "ysb/Klink/n20",
            "lrb/Default/n20", "lrb/Klink/n20",
        }
        seeds = {c.seed for c in PERF_GRID}
        durations = {c.duration_ms for c in PERF_GRID}
        assert len(seeds) == 1 and len(durations) == 1


class TestPercentile:
    def test_empty_and_singleton(self):
        assert _percentile([], 50.0) == 0.0
        assert _percentile([7.0], 99.0) == 7.0

    def test_interpolation(self):
        values = [0.0, 10.0, 20.0, 30.0]
        assert _percentile(values, 0.0) == 0.0
        assert _percentile(values, 50.0) == pytest.approx(15.0)
        assert _percentile(values, 100.0) == 30.0


class TestRenderPerf:
    def test_lists_every_point_and_parallel_line(self):
        point = PerfPoint(
            label="ysb/Default/n1", wall_ms=100.0,
            simulated_ms=5_000.0, events=1_000.0,
        )
        snapshot = {
            "points": [point.to_dict()],
            "latency_ms": {"mean": 100.0, "p50": 100.0, "p90": 100.0},
            "throughput_eps": 10_000.0,
            "parallel": {"jobs": 4, "cpus": 8, "wall_ms": 50.0,
                         "speedup": 2.0},
        }
        text = render_perf(snapshot)
        assert "ysb/Default/n1" in text
        assert "speedup 2.00x" in text

    def test_zero_wall_point_renders(self):
        point = PerfPoint(label="x", wall_ms=0.0, simulated_ms=0.0,
                          events=0.0)
        assert point.events_per_wall_sec == 0.0


class TestCheckSnapshot:
    def test_flags_structural_problems(self):
        snapshot = run_perf(grid=[TINY])
        broken = dict(snapshot)
        del broken["throughput_eps"]
        assert any("throughput_eps" in p for p in check_snapshot(broken))
        broken = dict(snapshot)
        broken["latency_ms"] = {"mean": 1.0}  # missing percentiles
        assert check_snapshot(broken)
        broken = dict(snapshot)
        broken["hottest_operators"] = [{"name": "x", "cpu_ms": None}]
        assert check_snapshot(broken)
        broken = dict(snapshot)
        broken["snapshot_version"] = 99
        assert any("snapshot_version" in p for p in check_snapshot(broken))


class TestPerfCli:
    @pytest.fixture(autouse=True)
    def _tiny_default_grid(self, monkeypatch):
        monkeypatch.setattr("repro.bench.perf.PERF_GRID", [TINY])

    def test_perf_writes_valid_snapshot(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        assert main(["perf", "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "simulator perf" in captured.out
        assert f"wrote {out}" in captured.err
        snapshot = json.loads(out.read_text())
        assert check_snapshot(snapshot) == []

    def test_perf_compares_against_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        assert main(["perf", "--out", str(out)]) == 0
        capsys.readouterr()
        # Wall time jitters between the two runs, so only assert that a
        # comparison is printed and the verdict maps to the exit code.
        code = main(["perf", "--baseline", str(out)])
        captured = capsys.readouterr()
        assert "simulator perf" in captured.out
        assert code in (0, 1)
        if code == 1:
            assert "REGRESSION" in captured.out or "regress" in (
                captured.out.lower()
            )
        assert main(["perf", "--baseline",
                     str(tmp_path / "missing.json")]) == 2

    def test_perf_rejects_bad_repeats(self, capsys):
        assert main(["perf", "--repeats", "0"]) == 2
        assert "ERROR" in capsys.readouterr().err


class TestCompareCheckCli:
    def test_check_accepts_valid_snapshot(self, tmp_path, capsys):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(run_perf(grid=[TINY])))
        assert main(["compare", "--check", str(path)]) == 0
        captured = capsys.readouterr()
        assert "[check] OK" in captured.err
        assert captured.out == ""  # --check suppresses the dump

    def test_check_rejects_invalid_snapshot(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"snapshot_version": 1}))
        assert main(["compare", "--check", str(path)]) == 1
        assert "[check]" in capsys.readouterr().err


class TestSweepCliParallel:
    def test_sweep_jobs_no_cache_smoke(self, capsys):
        code = main([
            "sweep", "--workload", "ysb", "--queries", "1",
            "--schedulers", "Default", "FCFS",
            "--duration", "5", "--jobs", "2", "--no-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Default" in out and "FCFS" in out

    def test_run_no_cache_smoke(self, capsys):
        code = main([
            "run", "--workload", "ysb", "--queries", "1",
            "--duration", "5", "--no-cache",
        ])
        assert code == 0
        assert "ysb" in capsys.readouterr().out
