"""Query-plan static validator: one test per diagnostic + engine wiring."""

from __future__ import annotations

import pytest

from tests.helpers import make_join_query, make_simple_query
from repro.analysis.plan_check import (
    PLAN_RULES,
    PlanValidationError,
    check_chaining,
    check_costs,
    check_query,
    check_structure,
    validate_queries,
)
from repro.core.baselines import DefaultScheduler
from repro.net.delays import ConstantDelay, UniformDelay
from repro.spe.chaining import fuse_stateless
from repro.spe.engine import Engine
from repro.spe.operators import (
    FilterOperator,
    KeyByOperator,
    MapOperator,
    SinkOperator,
    WindowedAggregate,
)
from repro.spe.query import Query, SourceBinding, SourceSpec, chain
from repro.spe.watermarks import BoundedOutOfOrderness, WatermarkGeneratorOperator
from repro.spe.windows import (
    CountWindows,
    SlidingEventTimeWindows,
    TumblingEventTimeWindows,
)


def make_spec(name="src", lateness_ms=0.0, **kwargs):
    defaults = dict(
        rate_eps=1000.0,
        watermark_period_ms=500.0,
        lateness_ms=lateness_ms,
    )
    defaults.update(kwargs)
    defaults.setdefault("delay_model", ConstantDelay(max(lateness_ms, 0.0)))
    return SourceSpec(name=name, **defaults)


def simple_ops(query_id="q"):
    filt = FilterOperator(f"{query_id}.filter", 0.01, selectivity=0.5)
    window = WindowedAggregate(
        f"{query_id}.window",
        TumblingEventTimeWindows(1000.0),
        cost_per_event_ms=0.01,
    )
    sink = SinkOperator(f"{query_id}.sink")
    return filt, window, sink


# -- structural rules --------------------------------------------------------


class TestStructure:
    def test_clean_linear_plan(self):
        filt, window, sink = simple_ops()
        report = check_structure(chain(filt, window, sink), sink)
        assert report.ok and not report.codes()

    def test_kp101_cycle(self):
        a = MapOperator("a", 0.01)
        b = MapOperator("b", 0.01)
        sink = SinkOperator("snk")
        a.connect(b)
        b.connect(a)  # back-edge
        report = check_structure([a, b, sink], sink)
        assert "KP101" in report.codes()
        assert not report.ok

    def test_kp102_dangling_output(self):
        a = MapOperator("a", 0.01)
        stranger = MapOperator("stranger", 0.01)
        sink = SinkOperator("snk")
        a.connect(stranger)  # channel owned by an operator outside the plan
        report = check_structure([a, sink], sink)
        assert "KP102" in report.codes()

    def test_kp103_not_wired_to_sink(self):
        a = MapOperator("a", 0.01)  # never connected
        sink = SinkOperator("snk")
        report = check_structure([a, sink], sink)
        assert "KP103" in report.codes()

    def test_kp105_missing_sink(self):
        a = MapOperator("a", 0.01)
        report = check_structure([a])
        assert "KP105" in report.codes()

    def test_kp105_sink_not_last(self):
        a = MapOperator("a", 0.01)
        sink = SinkOperator("snk")
        a.connect(sink)
        report = check_structure([sink, a], sink)
        assert "KP105" in report.codes()

    def test_kp106_out_of_topological_order(self):
        a = MapOperator("a", 0.01)
        b = MapOperator("b", 0.01)
        sink = SinkOperator("snk")
        a.connect(b)
        b.connect(sink)
        report = check_structure([b, a, sink], sink)
        assert "KP106" in report.codes()

    def test_kp117_duplicate_operator_name(self):
        a = MapOperator("dup", 0.01)
        b = MapOperator("dup", 0.01)
        sink = SinkOperator("snk")
        a.connect(b)
        b.connect(sink)
        report = check_structure([a, b, sink], sink)
        assert "KP117" in report.codes()
        assert report.ok  # warning severity: not blocking

    def test_query_constructor_raises_before_any_wiring_on_cycle(self):
        a = MapOperator("a", 0.01)
        b = MapOperator("b", 0.01)
        sink = SinkOperator("snk")
        a.connect(b)
        b.connect(a)
        binding = SourceBinding(make_spec(), a)
        with pytest.raises(PlanValidationError):
            Query("q", [binding], [a, b, sink], sink)

    def test_query_constructor_still_raises_plain_valueerror_compat(self):
        a = MapOperator("a", 0.01)
        sink = SinkOperator("snk")
        a.connect(sink)
        binding = SourceBinding(make_spec(), a)
        with pytest.raises(ValueError):
            Query("q", [binding], [sink, a], sink)  # sink not last


# -- source/watermark rules --------------------------------------------------


class TestSources:
    def make_query(self, spec, ops=None):
        if ops is None:
            ops = simple_ops()
        binding = SourceBinding(spec, ops[0])
        return Query("q", [binding], chain(*ops), ops[-1])

    def test_kp113_negative_lateness(self):
        spec = make_spec(lateness_ms=-5.0, delay_model=ConstantDelay(0.0))
        report = check_query(self.make_query(spec))
        assert "KP113" in report.codes()

    def test_kp114_lateness_below_delay_bound(self):
        spec = make_spec(lateness_ms=10.0, delay_model=UniformDelay(0.0, 200.0, seed=1))
        report = check_query(self.make_query(spec))
        assert "KP114" in report.codes()
        assert report.ok  # warning only

    def test_kp111_window_unreachable_by_watermarks(self):
        spec = make_spec(emit_watermarks=False)
        report = check_query(self.make_query(spec))
        assert "KP111" in report.codes()
        assert not report.ok

    def test_kp111_satisfied_by_midstream_generator(self):
        spec = make_spec(emit_watermarks=False)
        gen = WatermarkGeneratorOperator(
            "gen", BoundedOutOfOrderness(bound_ms=100.0, period_ms=200.0)
        )
        window = WindowedAggregate(
            "w", TumblingEventTimeWindows(1000.0), 0.01
        )
        sink = SinkOperator("snk")
        report = check_query(self.make_query(spec, (gen, window, sink)))
        assert "KP111" not in report.codes()

    def test_kp118_two_watermark_authorities(self):
        spec = make_spec()  # emit_watermarks=True
        gen = WatermarkGeneratorOperator(
            "gen", BoundedOutOfOrderness(bound_ms=100.0, period_ms=200.0)
        )
        window = WindowedAggregate("w", TumblingEventTimeWindows(1000.0), 0.01)
        sink = SinkOperator("snk")
        report = check_query(self.make_query(spec, (gen, window, sink)))
        assert "KP118" in report.codes()
        assert report.ok  # warning only

    def test_kp115_watermark_period_exceeds_window_size(self):
        spec = make_spec(watermark_period_ms=5000.0)
        window = WindowedAggregate(
            "w", SlidingEventTimeWindows(1000.0, 500.0), 0.01
        )
        filt = FilterOperator("f", 0.01, selectivity=0.5)
        sink = SinkOperator("snk")
        report = check_query(self.make_query(spec, (filt, window, sink)))
        assert "KP115" in report.codes()

    def test_kp104_unfed_join_input(self):
        query = make_join_query(n_inputs=2)
        join = query.operators[2]
        assert len(join.inputs) == 2
        # Rebind only one input: the other channel is never fed.
        query.bindings.pop()
        report = check_query(query)
        assert "KP104" in report.codes()


# -- window rules ------------------------------------------------------------


class TestWindows:
    def build(self, window, head=None):
        head = head or FilterOperator("f", 0.01, selectivity=0.5)
        sink = SinkOperator("snk")
        ops = chain(head, window, sink)
        binding = SourceBinding(make_spec(), head)
        return Query("q", [binding], ops, sink)

    def test_kp112_count_assigner_on_event_time_operator(self):
        window = WindowedAggregate("w", CountWindows(100), 0.01)
        report = check_query(self.build(window))
        assert "KP112" in report.codes()

    def test_kp110_keyed_window_without_key(self):
        window = WindowedAggregate(
            "w", TumblingEventTimeWindows(1000.0), 0.01,
            output_events_per_pane=10.0,
        )
        report = check_query(self.build(window))
        assert "KP110" in report.codes()
        assert not report.ok

    def test_kp110_satisfied_by_key_by_param(self):
        window = WindowedAggregate(
            "w", TumblingEventTimeWindows(1000.0), 0.01,
            output_events_per_pane=10.0, key_by="campaign_id",
        )
        report = check_query(self.build(window))
        assert "KP110" not in report.codes()

    def test_kp110_satisfied_by_upstream_key_by_operator(self):
        window = WindowedAggregate(
            "w", TumblingEventTimeWindows(1000.0), 0.01,
            output_events_per_pane=10.0,
        )
        report = check_query(self.build(window, head=KeyByOperator("kb", "user")))
        assert "KP110" not in report.codes()

    def test_unkeyed_single_output_window_is_fine(self):
        window = WindowedAggregate("w", TumblingEventTimeWindows(1000.0), 0.01)
        report = check_query(self.build(window))
        assert "KP110" not in report.codes()

    def test_key_by_operator_rejects_empty_key(self):
        with pytest.raises(ValueError):
            KeyByOperator("kb", "")


# -- cost / chaining rules ---------------------------------------------------


class TestCostsAndChaining:
    def test_kp120_insane_cost(self):
        op = MapOperator("m", cost_per_event_ms=500.0)
        report = check_costs([op])
        assert report.codes() == ["KP120"]
        assert report.ok  # warning only

    def test_kp121_insane_selectivity(self):
        # FilterOperator rejects selectivity > 1 itself; an expanding
        # flat-map-style operator is where the bound matters.
        op = MapOperator("m", 0.01)
        op.selectivity = 1000.0
        report = check_costs([op])
        assert report.codes() == ["KP121"]

    def test_sane_parameters_are_clean(self):
        op = MapOperator("m", cost_per_event_ms=0.01)
        assert check_costs([op]).codes() == []

    def test_kp116_stateful_member_smuggled_into_fused_chain(self):
        fused = fuse_stateless(
            [MapOperator("a", 0.01), MapOperator("b", 0.01)]
        )
        fused.members.append(
            WindowedAggregate("w", TumblingEventTimeWindows(1000.0), 0.01)
        )
        report = check_chaining([fused])
        assert "KP116" in report.codes()
        assert not report.ok

    def test_kp122_fusible_run_advice(self):
        query = make_simple_query()  # filter feeds the window: no run >= 2
        a = MapOperator("a", 0.01)
        b = MapOperator("b", 0.01)
        sink = SinkOperator("snk")
        report = check_chaining(chain(a, b, sink))
        assert "KP122" in report.codes()
        assert report.ok  # advice severity

    def test_valid_fused_chain_is_clean(self):
        fused = fuse_stateless([MapOperator("a", 0.01), MapOperator("b", 0.01)])
        assert check_chaining([fused]).codes() == []


# -- engine integration ------------------------------------------------------


class TestEngineIntegration:
    def bad_query(self):
        """Keyed window without a key selector: KP110 at submission."""
        spec = make_spec()
        filt = FilterOperator("q.filter", 0.01, selectivity=0.5)
        window = WindowedAggregate(
            "q.window", TumblingEventTimeWindows(1000.0), 0.01,
            output_events_per_pane=10.0,
        )
        sink = SinkOperator("q.sink")
        ops = chain(filt, window, sink)
        return Query("q", [SourceBinding(spec, filt)], ops, sink)

    def test_engine_rejects_invalid_plan_before_any_cycle(self):
        with pytest.raises(PlanValidationError) as exc_info:
            Engine([self.bad_query()], DefaultScheduler(), cores=4)
        assert any(d.code == "KP110" for d in exc_info.value.report.errors)

    def test_engine_no_validate_bypass(self):
        engine = Engine(
            [self.bad_query()], DefaultScheduler(), cores=4, validate=False
        )
        engine.run(2_000.0)  # runs; validation never consulted

    def test_engine_accepts_valid_plan(self):
        engine = Engine([make_simple_query()], DefaultScheduler(), cores=4)
        metrics = engine.run(2_000.0)
        assert metrics.cycles > 0

    def test_duplicate_query_ids_rejected(self):
        queries = [make_simple_query("q0", seed=0), make_simple_query("q0", seed=1)]
        with pytest.raises(PlanValidationError):
            validate_queries(queries)

    def test_validate_queries_report_mode(self):
        report = validate_queries([self.bad_query()], raise_on_error=False)
        assert not report.ok
        assert any(d.where and d.where.startswith("q:") for d in report.errors)

    def test_query_validate_method(self):
        report = make_simple_query().validate()
        assert report.ok

    def test_error_message_names_rule_and_operator(self):
        with pytest.raises(PlanValidationError) as exc_info:
            validate_queries([self.bad_query()])
        message = str(exc_info.value)
        assert "KP110" in message and "q.window" in message

    def test_plan_rules_table_is_complete(self):
        assert {"KP101", "KP110", "KP111", "KP122"} <= set(PLAN_RULES)


# -- every shipped query construction validates ------------------------------


WORKLOAD_CASES = [("ysb", 2), ("lrb", 2), ("nyt", 2)]


class TestShippedPlansValidate:
    @pytest.mark.parametrize("workload,n", WORKLOAD_CASES)
    def test_workload_plans_are_error_free(self, workload, n):
        from repro.workloads import WorkloadParams, build_queries

        queries = build_queries(workload, n, WorkloadParams(seed=1))
        report = validate_queries(queries, raise_on_error=False)
        assert report.ok, report.render_text()

    def test_helper_plans_are_error_free(self):
        report = validate_queries(
            [make_simple_query("s0"), make_join_query("j0")],
            raise_on_error=False,
        )
        assert report.ok, report.render_text()

    def test_fraud_detection_example_plans_are_error_free(self):
        import pathlib
        import sys

        examples = pathlib.Path(__file__).resolve().parent.parent / "examples"
        sys.path.insert(0, str(examples))
        try:
            import fraud_detection

            queries = [
                fraud_detection.build_fraud_query(f"fraud-{i}", seed=i)
                for i in range(2)
            ]
        finally:
            sys.path.pop(0)
        report = validate_queries(queries, raise_on_error=False)
        assert report.ok, report.render_text()

    def test_cli_check_plan_exits_zero(self, capsys):
        from repro.cli import main as bench_main

        assert bench_main(["check-plan", "--workload", "ysb", "--queries", "2"]) == 0
        assert "0 error(s)" in capsys.readouterr().out
