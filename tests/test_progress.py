"""Unit tests for StreamProgress: epoch demarcation, SWM detection, and
the per-epoch delay statistics feeding Eqs. 3-6."""

import math

import pytest

from repro.spe.query import StreamProgress
from repro.spe.windows import TumblingEventTimeWindows


def make_progress(window_ms=1000.0, period=500.0, history=400, start=0.0):
    return StreamProgress(
        TumblingEventTimeWindows(window_ms),
        watermark_period_ms=period,
        history=history,
        start_time=start,
    )


class TestSwmDetection:
    def test_watermark_below_deadline_is_not_swm(self):
        p = make_progress()
        assert p.observe_watermark(500.0, now=600.0) is False
        assert p.epoch_index == 0

    def test_watermark_covering_deadline_is_swm(self):
        p = make_progress()
        assert p.observe_watermark(1000.0, now=1100.0) is True
        assert p.epoch_index == 1
        assert p.last_swm_ingest_time == 1100.0

    def test_deadline_advances_after_swm(self):
        p = make_progress()
        p.observe_watermark(1000.0, now=1100.0)
        assert p.next_deadline == 2000.0

    def test_watermark_skipping_multiple_deadlines(self):
        p = make_progress()
        assert p.observe_watermark(3500.0, now=3600.0) is True
        # One ingestion = one epoch, even if it swept several deadlines.
        assert p.epoch_index == 1
        assert p.next_deadline == 4000.0

    def test_late_watermark_dropped(self):
        p = make_progress()
        p.observe_watermark(1000.0, now=1100.0)
        assert p.observe_watermark(900.0, now=1200.0) is False
        assert p.last_watermark_ts == 1000.0

    def test_duplicate_watermark_dropped(self):
        p = make_progress()
        p.observe_watermark(1000.0, now=1100.0)
        assert p.observe_watermark(1000.0, now=1200.0) is False

    def test_no_assigner_means_no_swms(self):
        p = StreamProgress(None, watermark_period_ms=500.0)
        assert p.observe_watermark(1e9, now=0.0) is False

    def test_start_time_offsets_first_deadline(self):
        p = make_progress(start=2500.0)
        assert p.next_deadline == 3000.0


class TestDelayStatistics:
    def test_epoch_stats_capture_mean_and_chi(self):
        p = make_progress()
        p.observe_delay(10.0)
        p.observe_delay(20.0)
        p.observe_watermark(1000.0, now=1100.0)
        epoch = p.epochs[-1]
        assert epoch.mu == pytest.approx(15.0)
        assert epoch.chi == pytest.approx((100.0 + 400.0) / 2)

    def test_weighted_delays(self):
        p = make_progress()
        p.observe_delay(10.0, weight=3.0)
        p.observe_delay(50.0, weight=1.0)
        p.observe_watermark(1000.0, now=1100.0)
        assert p.epochs[-1].mu == pytest.approx(20.0)

    def test_accumulators_reset_between_epochs(self):
        p = make_progress()
        p.observe_delay(10.0)
        p.observe_watermark(1000.0, now=1100.0)
        p.observe_delay(30.0)
        p.observe_watermark(2000.0, now=2100.0)
        assert p.epochs[-1].mu == pytest.approx(30.0)

    def test_empty_epoch_carries_last_profile(self):
        p = make_progress()
        p.observe_delay(10.0)
        p.observe_watermark(1000.0, now=1100.0)
        p.observe_watermark(2000.0, now=2100.0)  # idle epoch, no events
        assert p.epochs[-1].mu == pytest.approx(10.0)

    def test_history_bounded_by_h(self):
        p = make_progress(history=3)
        for i in range(10):
            p.observe_delay(float(i))
            p.observe_watermark((i + 1) * 1000.0, now=(i + 1) * 1000.0 + 50)
        assert len(p.epochs) == 3
        assert p.mu_history() == [7.0, 8.0, 9.0]

    def test_current_epoch_mean_prefers_fresh_data(self):
        p = make_progress()
        p.observe_delay(10.0)
        p.observe_watermark(1000.0, now=1100.0)
        p.observe_delay(90.0)
        mu, chi = p.current_epoch_mean()
        assert mu == pytest.approx(90.0)

    def test_current_epoch_mean_falls_back_to_history(self):
        # The "otherwise" branch of Eqs. 3-4: no data yet this epoch.
        p = make_progress()
        p.observe_delay(10.0)
        p.observe_watermark(1000.0, now=1100.0)
        mu, chi = p.current_epoch_mean()
        assert mu == pytest.approx(10.0)

    def test_current_epoch_mean_zero_without_any_data(self):
        assert make_progress().current_epoch_mean() == (0.0, 0.0)
