"""Property-based tests (hypothesis) on the core invariants:

* window assignment conserves event mass (scaled by pane membership);
* watermark deadline arithmetic is consistent with assignment;
* channels conserve queued counts/bytes under arbitrary push/pop traces;
* mid-pipeline watermark generation is monotone under arbitrary
  batch/watermark interleavings;
* expected slack is monotone in cost and in time, and non-negative when
  the queue is empty and the SWM interval lies entirely ahead;
* the Gaussian interval probabilities form a distribution;
* the burst state machine's quiet factor keeps the mean rate;
* the memory pressure tax is monotone and bounded.
"""

import math

import pytest
from hypothesis import assume, given, settings

settings.register_profile("repro", deadline=None)
settings.load_profile("repro")
from hypothesis import strategies as st

from repro.core.estimator import SwmEstimate, z_for_confidence
from repro.core.slack import expected_slack, interval_probability, survival
from repro.spe.events import EventBatch, Watermark
from repro.spe.memory import MemoryConfig, MemoryModel
from repro.spe.query import SourceSpec
from repro.spe.streams import Channel
from repro.spe.windows import SlidingEventTimeWindows
from repro.net.delays import ConstantDelay

sizes = st.floats(min_value=10.0, max_value=10_000.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
counts = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@st.composite
def assigners(draw):
    size = draw(sizes)
    divisor = draw(st.integers(min_value=1, max_value=8))
    offset = draw(st.floats(min_value=0.0, max_value=10_000.0))
    return SlidingEventTimeWindows(size, size / divisor, offset=offset)


class TestWindowProperties:
    @given(assigners(), times, st.floats(min_value=0.0, max_value=50_000.0), counts)
    @settings(max_examples=200)
    def test_assign_range_conserves_mass(self, assigner, t0, span, count):
        assume(count > 0)
        t1 = t0 + span
        assignments = assigner.assign_range(t0, t1, count)
        total = sum(c for _, c in assignments)
        memberships = assigner.size / assigner.slide
        if span < 1e-9:
            # A point exactly on a pane boundary can belong to one pane
            # more or fewer (measure-zero edge); mass per pane is exact.
            assert abs(total / count - memberships) <= 1.0 + 1e-6
        else:
            assert total == pytest.approx(count * memberships, rel=1e-6)
        assert all(c >= 0 for _, c in assignments)

    @given(assigners(), times)
    @settings(max_examples=200)
    def test_every_pane_covers_its_events(self, assigner, t):
        for pane in assigner.assign(t):
            assert pane.start <= t < pane.end
            assert pane.end - pane.start == pytest.approx(assigner.size)

    @given(assigners(), times)
    @settings(max_examples=200)
    def test_next_deadline_strictly_ahead_and_aligned(self, assigner, t):
        deadline = assigner.next_deadline(t)
        assert deadline > t
        # The deadline is a pane end: some pane assigned just before it
        # ends exactly there.
        panes = assigner.assign(deadline - 1e-3)
        assert any(abs(p.end - deadline) < 1e-2 for p in panes)

    @given(
        assigners(),
        times,
        st.floats(min_value=10.0, max_value=5_000.0),
        st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_assign_range_mass_conserved_within_1e9(
        self, assigner, t0, span, count
    ):
        # Mass conservation at tight tolerance: the per-pane counts sum
        # to count x (panes per event). The assigner strategy always
        # builds integer size/slide ratios, so the membership count is
        # constant over the span (measure-zero boundaries aside) and the
        # identity holds exactly in real arithmetic; 1e-9 relative
        # allows only float roundoff of the overlap telescoping sum.
        # Spans are bounded below at 10 ms (a generation batch is ~50 ms):
        # as the span shrinks toward zero the overlap subtraction cancels
        # catastrophically and no fixed relative tolerance can hold.
        t1 = t0 + span
        assignments = assigner.assign_range(t0, t1, count)
        total = sum(c for _, c in assignments)
        memberships = round(assigner.size / assigner.slide)
        assert total == pytest.approx(count * memberships, rel=1e-9)

    @given(assigners(), times, st.floats(min_value=1e-3, max_value=1e6))
    @settings(max_examples=200)
    def test_point_interval_agrees_with_assign(self, assigner, t, count):
        # A zero-width interval must delegate to the exact per-event
        # assignment: same panes, the full mass in each (no uniform
        # splitting against a ~zero span).
        point = assigner.assign_range(t, t, count)
        direct = assigner.assign(t)
        assert [p for p, _ in point] == direct
        assert all(c == count for _, c in point)

    @given(assigners(), times)
    @settings(max_examples=100)
    def test_assign_is_special_case_of_assign_range(self, assigner, t):
        point = {
            (p.start, round(c, 6))
            for p, c in assigner.assign_range(t, t, 1.0)
        }
        direct = {(p.start, 1.0) for p in assigner.assign(t)}
        assert {s for s, _ in point} == {s for s, _ in direct}


class TestChannelProperties:
    @given(
        st.lists(
            st.tuples(counts.filter(lambda c: c > 0), st.integers(16, 512)),
            max_size=30,
        ),
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=100)
    def test_accounting_matches_contents(self, pushes, pops):
        ch = Channel()
        for count, bpe in pushes:
            ch.push(
                EventBatch(count=count, t_start=0, t_end=1, bytes_per_event=bpe),
                0.0,
            )
        for _ in range(pops):
            ch.pop()
        expected_events = sum(
            e.record.count for e in ch if isinstance(e.record, EventBatch)
        )
        assert ch.queued_events == pytest.approx(expected_events, abs=1e-6)


class TestWatermarkGeneratorProperties:
    """ISSUE satellite: generated watermarks never regress, whatever the
    interleaving of data batches and (absorbed) upstream watermarks."""

    @st.composite
    @staticmethod
    def traces(draw):
        n = draw(st.integers(min_value=1, max_value=40))
        records = []
        for _ in range(n):
            if draw(st.booleans()):
                t0 = draw(st.floats(min_value=0.0, max_value=1e5))
                span = draw(st.floats(min_value=0.0, max_value=1e4))
                records.append(EventBatch(count=10.0, t_start=t0, t_end=t0 + span))
            else:
                ts = draw(st.floats(min_value=0.0, max_value=1e5))
                records.append(Watermark(ts))
        return records

    @staticmethod
    def _drive(strategy, records):
        from repro.spe.operators import SinkOperator
        from repro.spe.watermarks import WatermarkGeneratorOperator

        gen = WatermarkGeneratorOperator("wmgen", strategy)
        sink = SinkOperator("sink")
        gen.connect(sink)
        now = 0.0
        for record in records:
            gen.inputs[0].push(record, now)
            gen.step(1e9, now)
            now += 100.0
        emitted = [
            e.record.timestamp
            for e in sink.inputs[0]
            if isinstance(e.record, Watermark)
        ]
        return gen, emitted

    @given(traces())
    @settings(max_examples=200)
    def test_punctuated_generator_monotone(self, records):
        from repro.spe.watermarks import PunctuatedWatermarks

        gen, emitted = self._drive(PunctuatedWatermarks(bound_ms=50.0), records)
        assert emitted == sorted(emitted)
        assert len(emitted) == len(set(emitted))  # strictly increasing
        assert gen.watermarks_emitted == len(emitted)
        if emitted:
            assert gen.last_emitted == emitted[-1]

    @given(traces(), st.floats(min_value=0.0, max_value=2000.0),
           st.floats(min_value=50.0, max_value=500.0))
    @settings(max_examples=100)
    def test_bounded_generator_monotone(self, records, bound, period):
        from repro.spe.watermarks import BoundedOutOfOrderness

        gen, emitted = self._drive(
            BoundedOutOfOrderness(bound_ms=bound, period_ms=period), records
        )
        assert emitted == sorted(emitted)
        assert len(emitted) == len(set(emitted))
        # Every candidate either was emitted or counted as a suppressed
        # regression — none silently vanish.
        assert gen.watermarks_emitted == len(emitted)
        assert gen.regressions_suppressed >= 0


class TestSlackProperties:
    @st.composite
    @staticmethod
    def estimates(draw):
        mean = draw(st.floats(min_value=100.0, max_value=1e5))
        std = draw(st.floats(min_value=1.0, max_value=1e3))
        z = 2.0
        return SwmEstimate(
            mean=mean, std=std, t_min=mean - z * std, t_max=mean + z * std,
            deadline=mean, swm_generation=mean,
        )

    @given(estimates(), st.floats(min_value=0.0, max_value=1e4),
           st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=200)
    def test_slack_monotone_decreasing_in_cost(self, est, cost_a, cost_b):
        lo, hi = sorted([cost_a, cost_b])
        sl_lo = expected_slack(est, now=0.0, cost_ms=lo, cycle_ms=50.0)
        sl_hi = expected_slack(est, now=0.0, cost_ms=hi, cycle_ms=50.0)
        assert sl_hi <= sl_lo + 1e-9

    @given(estimates())
    @settings(max_examples=200)
    def test_slack_attenuates_with_time(self, est):
        early = expected_slack(est, now=0.0, cost_ms=0.0, cycle_ms=50.0)
        mid = expected_slack(est, now=est.mean / 2, cost_ms=0.0, cycle_ms=50.0)
        assert mid <= early + 50.0  # one cycle of discretization slop

    @given(estimates(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200)
    def test_slack_non_negative_with_empty_queue_ahead_of_interval(
        self, est, frac
    ):
        # ISSUE satellite: with nothing queued (cost = 0) and the whole
        # confidence interval still ahead (now <= t_min), the expected
        # slack is a mean of non-negative arrival margins — never negative.
        now = frac * max(est.t_min, 0.0)
        assume(now <= est.t_min)
        slack = expected_slack(est, now=now, cost_ms=0.0, cycle_ms=50.0)
        assert slack >= -1e-9

    @given(estimates(), st.floats(min_value=0.0, max_value=2e5))
    @settings(max_examples=200)
    def test_survival_in_unit_interval(self, est, t):
        s = survival(est, t)
        assert 0.0 <= s <= 1.0

    @given(estimates(), st.floats(min_value=-1e4, max_value=2e5),
           st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=200)
    def test_interval_probability_in_unit_interval(self, est, lo, width):
        p = interval_probability(est, lo, lo + width)
        assert -1e-12 <= p <= 1.0 + 1e-12


class TestConfidenceProperties:
    @given(st.floats(min_value=1.0, max_value=99.99))
    @settings(max_examples=100)
    def test_z_monotone_in_confidence(self, f):
        # Monotone up to the tabulated overrides: Algorithm 1 rounds the
        # 95% z-score up to 2.0 ("two sigma"), which sits 0.04 above the
        # exact quantile, so allow that much slop at the table boundaries.
        assume(f + 0.005 < 100.0)
        assert z_for_confidence(f + 0.005) >= z_for_confidence(f) - 0.05


class TestBurstProperties:
    @given(
        st.floats(min_value=1.0, max_value=5.0),
        st.floats(min_value=0.05, max_value=0.6),
    )
    @settings(max_examples=100)
    def test_quiet_factor_preserves_mean(self, factor, duty):
        assume(factor * duty < 0.999)
        spec = SourceSpec(
            name="s",
            rate_eps=100.0,
            watermark_period_ms=500.0,
            lateness_ms=0.0,
            delay_model=ConstantDelay(0.0),
            burst_factor=factor,
            burst_duty=duty,
        )
        mean = duty * factor + (1 - duty) * spec.quiet_factor
        assert mean == pytest.approx(1.0, rel=1e-9)
        assert spec.quiet_factor >= 0.0


class TestMemoryProperties:
    @given(
        st.floats(min_value=0.0, max_value=0.9),
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=200)
    def test_tax_monotone_and_bounded(self, start, u1, u2):
        cfg = MemoryConfig(
            pressure_tax_start=start,
            pressure_tax_full=min(start + 0.3, 1.0),
            pressure_tax_max=0.4,
        )
        model = MemoryModel(cfg)
        lo, hi = sorted([u1, u2])
        assert model.pressure_tax(lo) <= model.pressure_tax(hi) + 1e-12
        assert 0.0 <= model.pressure_tax(hi) <= 0.4
