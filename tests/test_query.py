"""Unit tests for Query construction, validation, and scheduler-facing
aggregates (costs, deadlines, memory)."""

import math

import pytest

from repro.net.delays import ConstantDelay
from repro.spe.operators import (
    FilterOperator,
    MapOperator,
    SinkOperator,
    WindowedAggregate,
)
from repro.spe.query import Query, SourceBinding, SourceSpec, chain
from repro.spe.windows import TumblingEventTimeWindows

from tests.helpers import make_join_query, make_simple_query


def _spec(name="s", rate=1000.0):
    model = ConstantDelay(0.0)
    return SourceSpec(
        name=name,
        rate_eps=rate,
        watermark_period_ms=500.0,
        lateness_ms=0.0,
        delay_model=model,
    )


class TestConstructionValidation:
    def test_requires_at_least_one_source(self):
        sink = SinkOperator("s")
        with pytest.raises(ValueError):
            Query("q", [], [sink], sink)

    def test_sink_must_be_last(self):
        m = MapOperator("m", 0.01)
        sink = SinkOperator("s")
        m.connect(sink)
        with pytest.raises(ValueError):
            Query("q", [SourceBinding(_spec(), m)], [sink, m], sink)

    def test_sink_must_be_included(self):
        m = MapOperator("m", 0.01)
        sink = SinkOperator("s")
        m.connect(sink)
        with pytest.raises(ValueError):
            Query("q", [SourceBinding(_spec(), m)], [m], sink)

    def test_unwired_operator_rejected(self):
        m = MapOperator("m", 0.01)  # no output
        sink = SinkOperator("s")
        with pytest.raises(ValueError):
            Query("q", [SourceBinding(_spec(), m)], [m, sink], sink)

    def test_rejects_negative_deployment_time(self):
        with pytest.raises(ValueError):
            make_simple_query(deployed_at=-1.0)

    def test_chain_wires_linearly(self):
        a, b, c = MapOperator("a", 0.01), MapOperator("b", 0.01), SinkOperator("c")
        ops = chain(a, b, c)
        assert ops == [a, b, c]
        assert a.output is b.inputs[0]
        assert b.output is c.inputs[0]


class TestTopology:
    def test_downstream_of(self, simple_query):
        filt, window, sink = simple_query.operators
        assert simple_query.downstream_of(filt) is window
        assert simple_query.downstream_of(window) is sink
        assert simple_query.downstream_of(sink) is None

    def test_windowed_operators_found(self, simple_query):
        assert len(simple_query.windowed_operators()) == 1

    def test_join_operators_found(self, join_query):
        assert len(join_query.join_operators()) == 1
        assert len(join_query.windowed_operators()) == 1

    def test_progress_bound_to_first_window_downstream(self, simple_query):
        for binding in simple_query.bindings:
            assert binding.progress is not None
            assert binding.progress.assigner is simple_query.windowed_operators()[0].assigner


class TestAggregates:
    def test_queued_events_sum_over_operators(self, simple_query):
        filt = simple_query.operators[0]
        from repro.spe.events import EventBatch

        filt.inputs[0].push(EventBatch(count=10, t_start=0, t_end=1), 0.0)
        assert simple_query.queued_events == 10

    def test_memory_includes_state(self, simple_query):
        from repro.spe.events import EventBatch

        window = simple_query.windowed_operators()[0]
        window.inputs[0].push(EventBatch(count=10, t_start=0, t_end=1), 0.0)
        window.step(1e9, 0.0)
        assert simple_query.state_bytes > 0
        assert simple_query.memory_bytes >= simple_query.state_bytes

    def test_unit_costs_fold_selectivity(self):
        q = make_simple_query(cost_ms=1.0, selectivity=0.5)
        filt, window, sink = q.operators
        unit = q.unit_costs()
        # sink: 0 cost; window: 1.0 + sel*0 (window declared sel 1.0,
        # unmeasured); filter: 1.0 + 0.5 * unit(window)
        assert unit[sink] == pytest.approx(sink.cost_per_event_ms)
        assert unit[filt] == pytest.approx(1.0 + 0.5 * unit[window])

    def test_pending_cost_scales_with_queue(self):
        q = make_simple_query(cost_ms=1.0)
        from repro.spe.events import EventBatch

        filt = q.operators[0]
        assert q.pending_cost_ms() == 0.0
        filt.inputs[0].push(EventBatch(count=10, t_start=0, t_end=1), 0.0)
        assert q.pending_cost_ms() > 10.0 * 0.99  # at least the first hop

    def test_pipeline_cost_per_event(self):
        q = make_simple_query(cost_ms=1.0)
        assert q.pipeline_cost_per_event_ms() == pytest.approx(
            sum(op.cost_per_event_ms for op in q.operators)
        )

    def test_next_window_deadline(self, simple_query):
        assert simple_query.next_window_deadline() == 1000.0

    def test_next_window_deadline_without_windows_is_inf(self):
        m = MapOperator("m", 0.01)
        sink = SinkOperator("s")
        m.connect(sink)
        q = Query("q", [SourceBinding(_spec(), m)], [m, sink], sink)
        assert q.next_window_deadline() == math.inf

    def test_oldest_queued_arrival(self, simple_query):
        from repro.spe.events import EventBatch

        assert simple_query.oldest_queued_arrival() is None
        filt, window, _ = simple_query.operators
        window.inputs[0].push(EventBatch(count=1, t_start=0, t_end=1), 5.0)
        filt.inputs[0].push(EventBatch(count=1, t_start=0, t_end=1), 9.0)
        assert simple_query.oldest_queued_arrival() == 5.0


class TestDeploymentStaggering:
    def test_window_offset_follows_deployment(self):
        q = make_simple_query(deployed_at=700.0, window_ms=1000.0)
        assigner = q.windowed_operators()[0].assigner
        assert assigner.offset == 700.0

    def test_progress_initial_deadline_respects_deployment(self):
        q = make_simple_query(deployed_at=700.0, window_ms=1000.0)
        assert q.bindings[0].progress.next_deadline == 1700.0
