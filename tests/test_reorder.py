"""Unit tests for the IOP reorder buffer (Sec. 2.1)."""

import pytest

from repro.spe.events import EventBatch, Watermark
from repro.spe.operators import SinkOperator
from repro.spe.reorder import ReorderBuffer


def make():
    rb = ReorderBuffer("rb")
    sink = SinkOperator("s")
    rb.connect(sink)
    return rb, sink


def batch(count, t0, t1):
    return EventBatch(count=count, t_start=t0, t_end=t1)


class TestBuffering:
    def test_events_held_until_watermark(self):
        rb, sink = make()
        rb.inputs[0].push(batch(10, 0, 100), 0.0)
        rb.step(1e9, 0.0)
        assert sink.inputs[0].queued_events == 0
        assert rb.state_events == 10
        assert rb.pending_batches() == 1

    def test_watermark_releases_complete_batches(self):
        rb, sink = make()
        rb.inputs[0].push(batch(10, 0, 100), 0.0)
        rb.inputs[0].push(Watermark(100.0), 0.0)
        rb.step(1e9, 0.0)
        assert sink.inputs[0].queued_events == 10
        assert rb.state_events == 0
        assert rb.released_events == 10

    def test_straddling_batch_stays_buffered(self):
        rb, sink = make()
        rb.inputs[0].push(batch(10, 50, 150), 0.0)
        rb.inputs[0].push(Watermark(100.0), 0.0)
        rb.step(1e9, 0.0)
        assert sink.inputs[0].queued_events == 0
        assert rb.pending_batches() == 1

    def test_release_is_event_time_sorted(self):
        rb, sink = make()
        # Out-of-order arrival: late-generated batch arrives first.
        rb.inputs[0].push(batch(1, 200, 300), 0.0)
        rb.inputs[0].push(batch(2, 0, 100), 0.0)
        rb.inputs[0].push(Watermark(300.0), 0.0)
        rb.step(1e9, 0.0)
        released = [
            e.record for e in list(sink.inputs[0])
            if isinstance(e.record, EventBatch)
        ]
        assert [b.t_start for b in released] == [0, 200]

    def test_watermark_follows_released_events(self):
        rb, sink = make()
        rb.inputs[0].push(batch(1, 0, 100), 0.0)
        rb.inputs[0].push(Watermark(100.0), 0.0)
        rb.step(1e9, 0.0)
        records = [e.record for e in list(sink.inputs[0])]
        assert isinstance(records[0], EventBatch)
        assert isinstance(records[-1], Watermark)

    def test_state_bytes_track_buffered_mass(self):
        rb, _ = make()
        rb.inputs[0].push(batch(10, 0, 100), 0.0)
        rb.step(1e9, 0.0)
        assert rb.state_bytes == pytest.approx(10 * 100)  # default 100 B/ev

    def test_explicit_state_bytes_override(self):
        rb = ReorderBuffer("rb", state_bytes_per_event=16)
        sink = SinkOperator("s")
        rb.connect(sink)
        rb.inputs[0].push(batch(10, 0, 100), 0.0)
        rb.step(1e9, 0.0)
        assert rb.state_bytes == pytest.approx(160)


class TestIopOverheadEndToEnd:
    def test_iop_adds_latency_over_oop(self):
        """Inserting a reorder buffer (IOP) delays output relative to OOP,
        the overhead Sec. 2.1 attributes to in-order processing."""
        from repro.core.baselines import DefaultScheduler
        from repro.spe.engine import Engine
        from repro.spe.operators import FilterOperator, WindowedAggregate
        from repro.spe.query import Query, SourceBinding, SourceSpec
        from repro.spe.windows import TumblingEventTimeWindows
        from repro.net.delays import UniformDelay

        def build(iop: bool):
            model = UniformDelay(0.0, 200.0, seed=5)
            spec = SourceSpec(
                name="src", rate_eps=1000.0, watermark_period_ms=500.0,
                lateness_ms=model.bound, delay_model=model,
            )
            ops = []
            if iop:
                ops.append(ReorderBuffer("rb"))
            filt = FilterOperator("f", 0.01, selectivity=0.5)
            window = WindowedAggregate(
                "w", TumblingEventTimeWindows(1000.0), 0.01,
                output_events_per_pane=10, key_by="key",
            )
            sink = SinkOperator("snk")
            ops += [filt, window, sink]
            for up, down in zip(ops, ops[1:]):
                up.connect(down)
            binding = SourceBinding(spec, ops[0])
            return Query("q", [binding], ops, sink)

        def mean_latency(iop: bool) -> float:
            engine = Engine([build(iop)], DefaultScheduler(), cores=4,
                            cycle_ms=100.0)
            return engine.run(20_000.0).mean_latency_ms

        assert mean_latency(True) >= mean_latency(False)
