"""Checkpoint/restore unit and property tests (repro.resilience).

The property at the core of the resilience story: a checkpoint is a
*complete* description of engine state. Captured at any virtual-clock
point, serialized, and restored into a fresh engine, it must reproduce
the original byte-for-byte — and a resumed run must be indistinguishable
from one that never stopped, for every scheduling policy.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import SCHEDULER_NAMES, make_scheduler
from repro.core.klink import KlinkScheduler
from repro.core.baselines import DefaultScheduler, RoundRobinScheduler
from repro.resilience import (
    SCHEMA_VERSION,
    CheckpointCoordinator,
    CheckpointError,
    CheckpointStore,
    RecoveryConfig,
    RecoveryManager,
    capture,
    deserialize,
    restore,
    serialize,
)
from repro.spe.engine import Engine
from repro.spe.memory import MemoryConfig

from tests.helpers import make_join_query, make_simple_query

MB = 1024 * 1024


def build_engine(scheduler_name: str = "Klink", *, seed: int = 0) -> Engine:
    """Two heterogeneous queries (bursty tumbling + two-input join) so a
    checkpoint must cover burst RNG state, join watermark vectors, and
    per-query progress trackers."""
    q0 = make_simple_query(
        "q0", rate_eps=4000.0, delay_ms=40.0, burst_factor=3.0, seed=seed
    )
    q1 = make_join_query("q1", delays_ms=(10.0, 60.0))
    return Engine(
        [q0, q1],
        make_scheduler(scheduler_name),
        cores=4,
        cycle_ms=100.0,
        memory=MemoryConfig(capacity_bytes=256 * MB),
        seed=seed,
    )


class TestCheckpointRoundTrip:
    @settings(max_examples=10, deadline=None)
    @given(
        cycles=st.integers(min_value=1, max_value=40),
        scheduler=st.sampled_from(["Klink", "Default", "RR"]),
    )
    def test_capture_serialize_restore_is_byte_identical(self, cycles, scheduler):
        engine = build_engine(scheduler)
        engine.run(cycles * engine.cycle_ms)
        text = serialize(capture(engine))
        fresh = build_engine(scheduler)
        restore(fresh, deserialize(text), mode="resume")
        assert serialize(capture(fresh)) == text

    def test_serialization_is_canonical_and_json(self):
        engine = build_engine()
        engine.run(500.0)
        snapshot = capture(engine)
        text = serialize(snapshot)
        # -inf watermarks and NaN metrics must survive the round trip
        assert deserialize(text) == json.loads(text)
        assert serialize(deserialize(text)) == text

    def test_restore_restores_clock_and_metrics(self):
        engine = build_engine()
        engine.run(2000.0)
        snapshot = capture(engine)
        fresh = build_engine()
        restore(fresh, snapshot, mode="resume")
        assert fresh.clock.now == engine.clock.now
        assert fresh.metrics.cycles == engine.metrics.cycles
        assert fresh.metrics.swm_latencies == engine.metrics.swm_latencies

    def test_rollback_keeps_processing_time_accounting(self):
        engine = build_engine()
        engine.run(1000.0)
        snapshot = capture(engine)
        engine.run(1000.0)
        cycles_before = engine.metrics.cycles
        clock_before = engine.clock.now
        restore(engine, snapshot, mode="rollback")
        assert engine.clock.now == clock_before  # clock does not rewind
        assert engine.metrics.cycles == cycles_before
        # ...but the event ledger does
        assert engine.metrics.total_events_ingested == pytest.approx(
            snapshot["metrics"]["scalars"]["total_events_ingested"]
        )


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_resumed_run_equals_uninterrupted_run(scheduler):
    """Satellite 1: split + resume == one uninterrupted run, per policy."""
    full = build_engine(scheduler)
    full.run(6000.0)

    first = build_engine(scheduler)
    first.run(2500.0)
    snapshot = deserialize(serialize(capture(first)))
    resumed = build_engine(scheduler)
    restore(resumed, snapshot, mode="resume")
    resumed.run(6000.0 - resumed.clock.now)

    full_summary = json.dumps(full.metrics.summary(), sort_keys=True)
    resumed_summary = json.dumps(resumed.metrics.summary(), sort_keys=True)
    assert resumed_summary == full_summary
    assert resumed.metrics.swm_latencies == full.metrics.swm_latencies
    assert resumed.metrics.marker_latencies == full.metrics.marker_latencies


class TestRestoreValidation:
    def test_schema_mismatch_rejected(self):
        engine = build_engine()
        engine.run(300.0)
        snapshot = capture(engine)
        snapshot["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(CheckpointError, match="schema"):
            restore(build_engine(), snapshot)

    def test_topology_mismatch_rejected(self):
        engine = build_engine()
        engine.run(300.0)
        snapshot = capture(engine)
        other = Engine(
            [make_simple_query("q0")],
            DefaultScheduler(),
            cores=4,
            cycle_ms=100.0,
            memory=MemoryConfig(capacity_bytes=256 * MB),
        )
        with pytest.raises(CheckpointError, match="queries"):
            restore(other, snapshot)

    def test_resume_backwards_rejected(self):
        engine = build_engine()
        engine.run(500.0)
        snapshot = capture(engine)
        engine.run(500.0)  # engine is now past the snapshot
        with pytest.raises(CheckpointError, match="resume backwards"):
            restore(engine, snapshot, mode="resume")

    def test_unknown_mode_rejected(self):
        engine = build_engine()
        with pytest.raises(CheckpointError, match="mode"):
            restore(engine, capture(engine), mode="sideways")


class TestCheckpointCoordinator:
    def test_periodic_checkpoints(self):
        engine = build_engine()
        engine.checkpoints = CheckpointCoordinator(500.0, keep=3)
        engine.run(2000.0)  # 20 cycles of 100ms
        # baseline at t=0 plus the periodic ones at t=500,1000,1500,2000
        assert engine.metrics.checkpoints_taken == 5
        assert engine.metrics.checkpoint_bytes_last > 0
        assert len(engine.checkpoints.store) == 3  # ring kept the last 3
        assert engine.checkpoints.store.times() == [1000.0, 1500.0, 2000.0]

    def test_skips_while_node_down_then_retries(self):
        engine = build_engine()
        coordinator = CheckpointCoordinator(500.0)
        assert not coordinator.maybe_checkpoint(engine, 400.0)
        assert not coordinator.maybe_checkpoint(
            engine, 500.0, down_nodes=frozenset((0,))
        )  # due but unaligned: a node is down
        assert not coordinator.maybe_checkpoint(
            engine, 600.0, down_nodes=frozenset((0,))
        )  # same period: still skipped
        assert coordinator.maybe_checkpoint(engine, 1000.0)  # next boundary
        assert coordinator.store.times() == [0.0]  # captured engine at t=0

    def test_baseline_taken_once(self):
        engine = build_engine()
        coordinator = CheckpointCoordinator(10_000.0)
        coordinator.ensure_baseline(engine)
        coordinator.ensure_baseline(engine)
        assert len(coordinator.store) == 1
        assert engine.metrics.checkpoints_taken == 1

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            CheckpointCoordinator(0.0)
        with pytest.raises(ValueError):
            CheckpointStore(keep=0)


class TestSchedulerSnapshots:
    def test_base_scheduler_state_is_empty(self):
        scheduler = DefaultScheduler()
        assert scheduler.snapshot_state() == {}
        scheduler.restore_state({})  # no-op by contract

    def test_round_robin_cursor_round_trips(self):
        scheduler = RoundRobinScheduler()
        scheduler._cursor = 7
        state = scheduler.snapshot_state()
        other = RoundRobinScheduler()
        other.restore_state(state)
        assert other._cursor == 7

    def test_klink_mm_state_round_trips(self):
        scheduler = KlinkScheduler()
        scheduler._mm_active = True
        scheduler._mm_entry_util = 0.93
        scheduler._mm_entry_time = 1234.0
        scheduler.last_slacks = {"q0": -5.0}
        scheduler.mm_episodes = 2
        scheduler._last_overhead_ms = 0.25
        state = json.loads(json.dumps(scheduler.snapshot_state()))
        other = KlinkScheduler()
        other.restore_state(state)
        assert other._mm_active is True
        assert other._mm_entry_util == 0.93
        assert other._mm_entry_time == 1234.0
        assert other.last_slacks == {"q0": -5.0}
        assert other.mm_episodes == 2
        assert other._last_overhead_ms == 0.25


class TestRecoveryConfig:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            RecoveryConfig("reboot")

    def test_restart_requires_coordinator(self):
        with pytest.raises(ValueError, match="Coordinator"):
            RecoveryManager(RecoveryConfig("restart"), None)

    def test_none_strategy_needs_no_coordinator(self):
        manager = RecoveryManager(RecoveryConfig("none"), None)
        assert manager.coordinator is None


def test_resilience_summary_not_in_headline_summary():
    """Resilience counters stay out of summary() so checkpointed
    no-failure runs compare byte-identical to baselines."""
    engine = build_engine()
    engine.checkpoints = CheckpointCoordinator(500.0)
    engine.run(1000.0)
    assert "checkpoints_taken" not in engine.metrics.summary()
    resilience = engine.metrics.resilience_summary()
    assert resilience["checkpoints_taken"] == 3  # baseline + t=500 + t=1000
    assert resilience["recoveries"] == 0
    assert math.isnan(resilience["mean_recovery_time_ms"])


# -- error paths: the contract must fail loudly, with actionable text --------


class TestDeserializeCorruption:
    def test_truncated_json_raises_checkpoint_error(self):
        engine = build_engine()
        text = serialize(capture(engine))
        with pytest.raises(CheckpointError) as exc_info:
            deserialize(text[: len(text) // 2])
        message = str(exc_info.value)
        assert "corrupt snapshot" in message
        # the message localizes the damage and tells the caller what to do
        assert "line" in message and "column" in message
        assert "earlier checkpoint" in message

    def test_garbage_bytes_rejected(self):
        with pytest.raises(CheckpointError, match="corrupt snapshot"):
            deserialize("not json at all {")

    def test_non_object_payload_rejected(self):
        with pytest.raises(CheckpointError, match="expected a snapshot object"):
            deserialize("[1, 2, 3]")

    def test_error_chains_the_json_cause(self):
        try:
            deserialize("{broken")
        except CheckpointError as exc:
            assert isinstance(exc.__cause__, json.JSONDecodeError)
        else:
            pytest.fail("CheckpointError not raised")


class TestTopologyValidation:
    def test_operator_rename_rejected(self):
        engine = build_engine()
        engine.run(300.0)
        snapshot = capture(engine)
        snapshot["queries"][0]["operator_names"][-1] = "renamed.sink"
        with pytest.raises(CheckpointError, match="operator topology"):
            restore(build_engine(), snapshot)

    def test_query_id_mismatch_rejected(self):
        engine = build_engine()
        engine.run(300.0)
        snapshot = capture(engine)
        snapshot["queries"][0]["query_id"] = "somebody-else"
        with pytest.raises(CheckpointError, match="query id mismatch"):
            restore(build_engine(), snapshot)


# -- operators gaining checkpoint support must round-trip --------------------


def build_reorder_engine(seed: int = 0) -> Engine:
    """source -> reorder buffer -> filter -> window -> sink, with enough
    network jitter that the buffer holds in-flight batches mid-run."""
    from repro.net.delays import UniformDelay
    from repro.spe.operators import FilterOperator, SinkOperator, WindowedAggregate
    from repro.spe.query import Query, SourceBinding, SourceSpec
    from repro.spe.reorder import ReorderBuffer
    from repro.spe.windows import TumblingEventTimeWindows

    model = UniformDelay(0.0, 200.0, seed=5)
    spec = SourceSpec(
        name="src", rate_eps=1000.0, watermark_period_ms=500.0,
        lateness_ms=model.bound, delay_model=model,
    )
    reorder = ReorderBuffer("rb", state_bytes_per_event=16)
    filt = FilterOperator("f", 0.01, selectivity=0.5)
    window = WindowedAggregate(
        "w", TumblingEventTimeWindows(1000.0), 0.01,
        output_events_per_pane=10, key_by="key",
    )
    sink = SinkOperator("snk")
    operators = [reorder, filt, window, sink]
    for up, down in zip(operators, operators[1:]):
        up.connect(down)
    query = Query("q", [SourceBinding(spec, reorder, seed=seed)], operators, sink)
    return Engine(
        [query], DefaultScheduler(), cores=4, cycle_ms=100.0,
        memory=MemoryConfig(capacity_bytes=256 * MB), seed=seed,
    )


class TestReorderBufferCheckpoint:
    def test_buffered_batches_are_captured(self):
        engine = build_reorder_engine()
        engine.run(2500.0)
        snapshot = capture(engine)
        op_states = snapshot["queries"][0]["operators"]
        reorder_states = [s for s in op_states if "reorder" in s]
        assert len(reorder_states) == 1

    def test_roundtrip_is_byte_identical(self):
        engine = build_reorder_engine()
        engine.run(2500.0)
        text = serialize(capture(engine))
        fresh = build_reorder_engine()
        restore(fresh, deserialize(text), mode="resume")
        assert serialize(capture(fresh)) == text

    def test_resumed_run_equals_uninterrupted(self):
        full = build_reorder_engine()
        full.run(5000.0)

        first = build_reorder_engine()
        first.run(2500.0)
        snapshot = deserialize(serialize(capture(first)))
        resumed = build_reorder_engine()
        restore(resumed, snapshot, mode="resume")
        resumed.run(5000.0 - resumed.clock.now)

        assert json.dumps(resumed.metrics.summary(), sort_keys=True) == json.dumps(
            full.metrics.summary(), sort_keys=True
        )
