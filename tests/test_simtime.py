"""Unit tests for the virtual clock and time helpers."""

import pytest

from repro.spe.simtime import VirtualClock, millis, seconds


class TestHelpers:
    def test_seconds_converts_to_milliseconds(self):
        assert seconds(2.5) == 2500.0

    def test_millis_is_identity(self):
        assert millis(120.0) == 120.0


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(42.0).now == 42.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(120.0)
        clock.advance(30.0)
        assert clock.now == 150.0

    def test_advance_returns_new_time(self):
        assert VirtualClock().advance(10.0) == 10.0

    def test_advance_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_zero_is_allowed(self):
        clock = VirtualClock(5.0)
        clock.advance(0.0)
        assert clock.now == 5.0

    def test_advance_to_moves_forward(self):
        clock = VirtualClock(10.0)
        clock.advance_to(25.0)
        assert clock.now == 25.0

    def test_advance_to_rejects_past(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_advance_to_same_time_is_noop(self):
        clock = VirtualClock(10.0)
        clock.advance_to(10.0)
        assert clock.now == 10.0
