"""Unit tests for the expected-slack computation (Sec. 3.2, Alg. 1)."""

import math

import pytest

from repro.core.estimator import SwmEstimate
from repro.core.slack import (
    expected_slack,
    gaussian_q,
    interval_probability,
    interval_steps,
    survival,
)


def estimate(mean=1000.0, std=100.0, z=2.0):
    return SwmEstimate(
        mean=mean,
        std=std,
        t_min=mean - z * std,
        t_max=mean + z * std,
        deadline=mean,
        swm_generation=mean,
    )


class TestGaussianQ:
    def test_q_at_zero_is_half(self):
        assert gaussian_q(0.0) == pytest.approx(0.5)

    def test_q_is_decreasing(self):
        assert gaussian_q(-2.0) > gaussian_q(0.0) > gaussian_q(2.0)

    def test_q_tails(self):
        assert gaussian_q(10.0) == pytest.approx(0.0, abs=1e-9)
        assert gaussian_q(-10.0) == pytest.approx(1.0, abs=1e-9)


class TestIntervalProbability:
    def test_symmetric_interval_around_mean(self):
        e = estimate(mean=0.0, std=1.0)
        # +-1 sigma captures ~68%
        assert interval_probability(e, -1.0, 1.0) == pytest.approx(0.6827, abs=1e-3)

    def test_empty_interval_is_zero(self):
        e = estimate()
        assert interval_probability(e, 100.0, 100.0) == 0.0
        assert interval_probability(e, 200.0, 100.0) == 0.0

    def test_partition_sums_to_one(self):
        e = estimate(mean=0.0, std=1.0)
        total = sum(
            interval_probability(e, x, x + 0.5) for x in
            [i * 0.5 for i in range(-20, 20)]
        )
        assert total == pytest.approx(1.0, abs=1e-6)


class TestSurvival:
    def test_survival_at_mean_is_half(self):
        assert survival(estimate(mean=500.0), 500.0) == pytest.approx(0.5)

    def test_survival_decreasing_in_time(self):
        e = estimate(mean=500.0, std=50.0)
        assert survival(e, 400.0) > survival(e, 500.0) > survival(e, 600.0)


class TestExpectedSlack:
    def test_far_future_swm_with_empty_queue(self):
        # SWM expected at 1000 +- small; now = 0, no queued work: slack
        # should be close to the time until ingestion.
        e = estimate(mean=1000.0, std=10.0)
        sl = expected_slack(e, now=0.0, cost_ms=0.0, cycle_ms=10.0)
        assert sl == pytest.approx(1000.0, rel=0.05)

    def test_cost_reduces_slack_proportionally(self):
        # The cost term is weighted by the interval's probability mass
        # (Alg. 1 truncates the integral to the >= f% interval), so 300 ms
        # of queued work removes ~0.95 * 300 ms of slack at f = 95.
        e = estimate(mean=1000.0, std=10.0)
        sl0 = expected_slack(e, now=0.0, cost_ms=0.0, cycle_ms=10.0)
        sl300 = expected_slack(e, now=0.0, cost_ms=300.0, cycle_ms=10.0)
        assert sl0 - sl300 == pytest.approx(300.0, rel=0.06)
        assert sl0 - sl300 <= 300.0 + 1e-9

    def test_slack_attenuates_as_time_progresses(self):
        e = estimate(mean=1000.0, std=50.0)
        slacks = [
            expected_slack(e, now=t, cost_ms=0.0, cycle_ms=10.0)
            for t in (0.0, 400.0, 800.0)
        ]
        assert slacks[0] > slacks[1] > slacks[2]

    def test_overdue_swm_gives_negative_slack_with_cost(self):
        e = estimate(mean=1000.0, std=10.0)
        sl = expected_slack(e, now=2000.0, cost_ms=500.0, cycle_ms=10.0)
        assert sl < 0
        # Overdue branch: (t_max - now) - cost
        assert sl == pytest.approx((e.t_max - 2000.0) - 500.0)

    def test_mid_interval_conditioning(self):
        # When now is inside the interval, probabilities are renormalized
        # by P(w > now); slack stays positive for zero cost.
        e = estimate(mean=1000.0, std=100.0)
        sl = expected_slack(e, now=1000.0, cost_ms=0.0, cycle_ms=10.0)
        assert sl > 0
        assert sl < 300.0  # bounded by the remaining interval

    def test_rejects_nonpositive_cycle(self):
        with pytest.raises(ValueError):
            expected_slack(estimate(), now=0.0, cost_ms=0.0, cycle_ms=0.0)

    def test_smaller_cycle_converges_to_analytic_mean(self):
        # With cost 0 and now far before the interval, slack -> E[w] - now
        # (+ half a cycle of discretization); finer cycles converge.
        e = estimate(mean=1000.0, std=50.0)
        coarse = expected_slack(e, now=0.0, cost_ms=0.0, cycle_ms=100.0)
        fine = expected_slack(e, now=0.0, cost_ms=0.0, cycle_ms=1.0)
        assert abs(fine - 1000.0) < abs(coarse - 1000.0) + 60.0
        assert fine == pytest.approx(1000.0, rel=0.05)


class TestIntervalSteps:
    def test_counts_slides_across_interval(self):
        e = estimate(mean=1000.0, std=100.0, z=2.0)  # width 400
        assert interval_steps(e, now=0.0, cycle_ms=100.0) == 4

    def test_interval_in_past_is_zero(self):
        e = estimate(mean=1000.0, std=10.0)
        assert interval_steps(e, now=2000.0, cycle_ms=100.0) == 0

    def test_now_inside_interval_truncates(self):
        e = estimate(mean=1000.0, std=100.0, z=2.0)  # [800, 1200]
        assert interval_steps(e, now=1100.0, cycle_ms=100.0) == 1
