"""Tests for the state-contract analyzer (repro.analysis.statecheck).

Two kinds of proof live here:

* **Tree-clean self-check** — the shipped package must pass every
  KS2xx/KW3xx rule (the same gate CI runs).
* **Mutation tests** — the analyzer's teeth: copy the real tree into a
  tmpdir, re-introduce the exact bug classes the rules exist for, and
  assert the corresponding diagnostic fires. If a refactor ever
  neuters a rule, these fail before the rule silently stops guarding
  the checkpoint contract.

The synthetic-package tests below exercise each rule in isolation
against a minimal `pkg/resilience/checkpoint.py` layout.
"""

import json
import shutil
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.statecheck import (
    STATE_RULES,
    check_paths,
    main,
    run_statecheck,
)

SRC = Path(repro.__file__).resolve().parent

FINGERPRINT_REL = "resilience/schema_fingerprint.json"


def codes(report):
    return sorted({d.code for d in report.diagnostics})


def messages(report):
    return "\n".join(d.message for d in report.diagnostics)


# -- synthetic package builders ----------------------------------------------

CLEAN_CHECKPOINT = """\
import json

SCHEMA_VERSION = 1


def _channel_state(channel):
    return {"pending": list(channel.pending), "pushed": channel.pushed}


def _restore_channel(channel, state):
    channel.pending = list(state["pending"])
    channel.pushed = float(state["pushed"])


def serialize(snapshot):
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
"""

CLEAN_CHANNEL = """\
class Channel:
    def __init__(self):
        self.pending = []
        self.pushed = 0.0

    def push(self, item):
        self.pending.append(item)
        self.pushed += 1.0
"""


def make_pkg(tmp_path, checkpoint=CLEAN_CHECKPOINT, files=None):
    """Materialize a synthetic package with the resilience/ layout the
    analyzer anchors on."""
    root = tmp_path / "pkg"
    (root / "resilience").mkdir(parents=True)
    (root / "resilience" / "checkpoint.py").write_text(
        checkpoint, encoding="utf-8"
    )
    for rel, text in (files or {}).items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


@pytest.fixture
def tree_copy(tmp_path):
    """A private copy of the shipped package, safe to mutate."""
    dest = tmp_path / "repro"
    shutil.copytree(SRC, dest, ignore=shutil.ignore_patterns("__pycache__"))
    return dest


# -- the shipped tree must be clean ------------------------------------------


class TestShippedTreeIsClean:
    def test_no_diagnostics(self):
        report = check_paths([SRC])
        assert report.diagnostics == [], report.render_text()

    def test_transient_suppressions_are_counted_not_silent(self):
        report = check_paths([SRC])
        assert report.suppressed.get("KS201", 0) > 0

    def test_fingerprint_file_is_committed_and_well_formed(self):
        payload = json.loads((SRC / FINGERPRINT_REL).read_text())
        assert payload["schema_version"] == 4
        assert "fingerprint" in payload
        # the contract covers every helper-pair entry plus schedulers
        for entry in ("engine", "operator", "channel", "binding", "metrics"):
            assert entry in payload["contract"]
        assert any(k.startswith("scheduler:") for k in payload["contract"])


# -- mutation tests: the analyzer's teeth ------------------------------------


class TestMutationTeeth:
    def test_new_uncaptured_attr_fires_ks201(self, tree_copy):
        """Teeth (a): add an uncaptured mutable attribute to a
        checkpointed class; KS201 must fire."""
        streams = tree_copy / "spe" / "streams.py"
        streams.write_text(
            streams.read_text()
            + textwrap.dedent(
                """

                class LeakyChannel(Channel):
                    def poke(self) -> None:
                        self._sneaky = 1.0
                """
            )
        )
        report = check_paths([tree_copy])
        ks201 = [d for d in report.diagnostics if d.code == "KS201"]
        assert ks201, report.render_text()
        assert any("LeakyChannel._sneaky" in d.message for d in ks201)

    @staticmethod
    def _widen_channel_contract(tree_copy):
        """Symmetrically add a new captured+restored channel field."""
        checkpoint = tree_copy / "resilience" / "checkpoint.py"
        source = checkpoint.read_text()
        capture_anchor = '"pushed": channel.events_pushed,'
        restore_anchor = 'channel.events_pushed = float(state["pushed"])'
        assert source.count(capture_anchor) == 1
        assert source.count(restore_anchor) == 1
        source = source.replace(
            capture_anchor,
            capture_anchor + '\n        "sneaky_extra": channel.sneaky_extra,',
        )
        source = source.replace(
            restore_anchor,
            restore_anchor + '\n    channel.sneaky_extra = state["sneaky_extra"]',
        )
        checkpoint.write_text(source)
        return checkpoint

    def test_field_set_change_without_version_bump_fires_ks210(self, tree_copy):
        """Teeth (b): widen the captured field set while SCHEMA_VERSION
        stays put; KS210 must fire."""
        self._widen_channel_contract(tree_copy)
        report = check_paths([tree_copy])
        ks210 = [d for d in report.diagnostics if d.code == "KS210"]
        assert ks210, report.render_text()
        assert "sneaky_extra" in ks210[0].message
        assert "SCHEMA_VERSION" in ks210[0].message

    def test_ks210_refuses_update_fingerprint(self, tree_copy):
        """--update-fingerprint must never bless a drifted contract."""
        self._widen_channel_contract(tree_copy)
        fingerprint = tree_copy / FINGERPRINT_REL
        before = fingerprint.read_bytes()
        report = check_paths([tree_copy], update_fingerprint=True)
        assert "KS210" in codes(report)
        assert fingerprint.read_bytes() == before

    def test_version_bump_plus_refresh_clears_ks210(self, tree_copy):
        checkpoint = self._widen_channel_contract(tree_copy)
        source = checkpoint.read_text()
        assert source.count("SCHEMA_VERSION = 4") == 1
        checkpoint.write_text(
            source.replace("SCHEMA_VERSION = 4", "SCHEMA_VERSION = 5")
        )
        # stale fingerprint now reports KS211 (regenerable), not KS210
        report = check_paths([tree_copy])
        assert codes(report) == ["KS211"]
        assert "stale" in messages(report)
        # regenerating blesses the bumped schema; the tree is clean again
        check_paths([tree_copy], update_fingerprint=True)
        report = check_paths([tree_copy])
        assert report.diagnostics == [], report.render_text()
        payload = json.loads((tree_copy / FINGERPRINT_REL).read_text())
        assert payload["schema_version"] == 5
        assert "sneaky_extra" in payload["contract"]["channel"]


# -- KS201/KS202: coverage and symmetry (synthetic) --------------------------


class TestCoverageRules:
    def test_clean_synthetic_package(self, tmp_path):
        root = make_pkg(tmp_path, files={"spe/streams.py": CLEAN_CHANNEL})
        check_paths([root], update_fingerprint=True)
        report = check_paths([root])
        assert report.diagnostics == [], report.render_text()

    def test_uncaptured_attr_fires_ks201(self, tmp_path):
        channel = CLEAN_CHANNEL + (
            "\n    def mark(self):\n        self.dirty = True\n"
        )
        root = make_pkg(tmp_path, files={"spe/streams.py": channel})
        report = check_paths([root])
        ks201 = [d for d in report.diagnostics if d.code == "KS201"]
        assert len(ks201) == 1
        assert "Channel.dirty" in ks201[0].message
        assert "transient[reason]" in ks201[0].message

    def test_transient_pragma_suppresses_and_is_counted(self, tmp_path):
        channel = CLEAN_CHANNEL + (
            "\n    def mark(self):\n"
            "        self.dirty = True  # klink: transient[memo flag]\n"
        )
        root = make_pkg(tmp_path, files={"spe/streams.py": channel})
        report = check_paths([root])
        assert "KS201" not in codes(report)
        assert report.suppressed == {"KS201": 1}

    def test_subclass_of_checkpointed_class_is_covered(self, tmp_path):
        channel = CLEAN_CHANNEL + textwrap.dedent(
            """

            class PriorityChannel(Channel):
                def bump(self):
                    self.priority = 1
            """
        )
        root = make_pkg(tmp_path, files={"spe/streams.py": channel})
        report = check_paths([root])
        assert any(
            d.code == "KS201" and "PriorityChannel.priority" in d.message
            for d in report.diagnostics
        )

    def test_captured_but_never_restored_fires_ks202(self, tmp_path):
        checkpoint = CLEAN_CHECKPOINT.replace(
            '"pushed": channel.pushed}',
            '"pushed": channel.pushed, "extra": channel.extra}',
        )
        root = make_pkg(tmp_path, checkpoint=checkpoint)
        report = check_paths([root])
        ks202 = [d for d in report.diagnostics if d.code == "KS202"]
        assert len(ks202) == 1
        assert "'extra'" in ks202[0].message
        assert "never touched" in ks202[0].message

    def test_restored_but_never_captured_fires_ks202(self, tmp_path):
        checkpoint = CLEAN_CHECKPOINT.replace(
            'channel.pushed = float(state["pushed"])',
            'channel.pushed = float(state["pushed"])\n    channel.ghost = 0.0',
        )
        root = make_pkg(tmp_path, checkpoint=checkpoint)
        report = check_paths([root])
        ks202 = [d for d in report.diagnostics if d.code == "KS202"]
        assert len(ks202) == 1
        assert "'ghost'" in ks202[0].message
        assert "never captured" in ks202[0].message

    def test_dataclass_fields_need_coverage(self, tmp_path):
        checkpoint = CLEAN_CHECKPOINT + textwrap.dedent(
            """

            def _metrics_state(metrics):
                return {"cycles": metrics.cycles}


            def _restore_metrics(metrics, state):
                metrics.cycles = int(state["cycles"])
            """
        )
        metrics = """
            from dataclasses import dataclass, field

            @dataclass
            class RunMetrics:
                cycles: int = 0
                swm_latencies: list = field(default_factory=list)
        """
        root = make_pkg(
            tmp_path, checkpoint=checkpoint, files={"spe/metrics.py": metrics}
        )
        report = check_paths([root])
        assert any(
            d.code == "KS201" and "RunMetrics.swm_latencies" in d.message
            for d in report.diagnostics
        )

    def test_getattr_loop_over_constant_tuple_counts_as_coverage(self, tmp_path):
        checkpoint = CLEAN_CHECKPOINT + textwrap.dedent(
            """

            _SCALARS = ("cycles", "events")


            def _metrics_state(metrics):
                return {name: getattr(metrics, name) for name in _SCALARS}


            def _restore_metrics(metrics, state):
                for name in _SCALARS:
                    setattr(metrics, name, state[name])
            """
        )
        metrics = """
            from dataclasses import dataclass

            @dataclass
            class RunMetrics:
                cycles: int = 0
                events: float = 0.0
        """
        root = make_pkg(
            tmp_path, checkpoint=checkpoint, files={"spe/metrics.py": metrics}
        )
        report = check_paths([root])
        assert "KS201" not in codes(report), report.render_text()


class TestSchedulerRules:
    SCHED = """
        class Scheduler:
            def snapshot_state(self):
                return {"quantum": self.quantum}

            def restore_state(self, state):
                self.quantum = float(state["quantum"])


        class FancyScheduler(Scheduler):
            def assign(self, q):
                self.assignments = {q: 1}
    """

    def test_inherited_snapshot_does_not_cover_new_fields(self, tmp_path):
        root = make_pkg(tmp_path, files={"core/sched.py": self.SCHED})
        report = check_paths([root])
        assert any(
            d.code == "KS201" and "FancyScheduler.assignments" in d.message
            for d in report.diagnostics
        )

    ONE_SIDED = """
        class Scheduler:
            def snapshot_state(self):
                return {"quantum": self.quantum}

            def restore_state(self, state):
                self.quantum = float(state["quantum"])


        class FancyScheduler(Scheduler):
            def assign(self, q):
                self.assignments = {q: 1}

            def snapshot_state(self):
                return {"assignments": dict(self.assignments)}
    """

    def test_one_sided_override_fires_ks202(self, tmp_path):
        root = make_pkg(tmp_path, files={"core/sched.py": self.ONE_SIDED})
        report = check_paths([root])
        assert any(
            d.code == "KS202" and "without restore_state" in d.message
            for d in report.diagnostics
        )


# -- KS22x: canonical serialization (synthetic) ------------------------------


class TestSerializationRules:
    def test_dumps_without_sort_keys_fires_ks221(self, tmp_path):
        checkpoint = CLEAN_CHECKPOINT.replace(
            "json.dumps(snapshot, sort_keys=True, separators=(\",\", \":\"))",
            "json.dumps(snapshot)",
        )
        root = make_pkg(tmp_path, checkpoint=checkpoint)
        report = check_paths([root])
        assert "KS221" in codes(report)

    def test_bench_cache_is_also_a_canonical_path(self, tmp_path):
        cache = """
            import json

            def fingerprint(payload):
                return json.dumps(payload)
        """
        root = make_pkg(tmp_path, files={"bench/cache.py": cache})
        report = check_paths([root])
        ks221 = [d for d in report.diagnostics if d.code == "KS221"]
        assert len(ks221) == 1
        assert ks221[0].file.endswith("bench/cache.py")

    def test_other_modules_are_out_of_scope(self, tmp_path):
        other = """
            import json

            def export(payload):
                return json.dumps(payload)
        """
        root = make_pkg(tmp_path, files={"obs/export.py": other})
        report = check_paths([root])
        assert "KS221" not in codes(report)

    def test_list_of_dict_items_fires_ks222(self, tmp_path):
        checkpoint = CLEAN_CHECKPOINT + textwrap.dedent(
            """

            def _rows(mapping):
                return list(mapping.items())
            """
        )
        root = make_pkg(tmp_path, checkpoint=checkpoint)
        report = check_paths([root])
        assert "KS222" in codes(report)

    def test_listcomp_over_keys_fires_ks222(self, tmp_path):
        checkpoint = CLEAN_CHECKPOINT + textwrap.dedent(
            """

            def _names(mapping):
                return [k for k in mapping.keys()]
            """
        )
        root = make_pkg(tmp_path, checkpoint=checkpoint)
        report = check_paths([root])
        assert "KS222" in codes(report)

    def test_sorted_iteration_is_clean(self, tmp_path):
        checkpoint = CLEAN_CHECKPOINT + textwrap.dedent(
            """

            def _rows(mapping):
                return sorted(mapping.items())
            """
        )
        root = make_pkg(tmp_path, checkpoint=checkpoint)
        report = check_paths([root])
        assert "KS222" not in codes(report)

    def test_allow_pragma_suppresses_ks221(self, tmp_path):
        checkpoint = CLEAN_CHECKPOINT.replace(
            "json.dumps(snapshot, sort_keys=True, separators=(\",\", \":\"))",
            "json.dumps(snapshot)  # klink: allow[KS221]",
        )
        root = make_pkg(tmp_path, checkpoint=checkpoint)
        report = check_paths([root])
        assert "KS221" not in codes(report)
        assert report.suppressed.get("KS221") == 1


class TestCursorDrift:
    def _pkg(self, tmp_path, step):
        checkpoint = CLEAN_CHECKPOINT.replace(
            '"pushed": channel.pushed}',
            '"pushed": channel.pushed, "emit_time": channel.emit_time}',
        ).replace(
            'channel.pushed = float(state["pushed"])',
            'channel.pushed = float(state["pushed"])\n'
            '    channel.emit_time = float(state["emit_time"])',
        )
        channel = CLEAN_CHANNEL.replace(
            "self.pushed = 0.0",
            "self.pushed = 0.0\n        self.emit_time = 0.0",
        ) + ("\n    def advance(self, dt):\n        self.emit_time += %s\n" % step)
        return make_pkg(
            tmp_path, checkpoint=checkpoint, files={"spe/streams.py": channel}
        )

    def test_float_accumulation_into_cursor_fires_ks223(self, tmp_path):
        report = check_paths([self._pkg(tmp_path, "dt")])
        ks223 = [d for d in report.diagnostics if d.code == "KS223"]
        assert len(ks223) == 1
        assert "'emit_time'" in ks223[0].message

    def test_integer_step_is_clean(self, tmp_path):
        report = check_paths([self._pkg(tmp_path, "1")])
        assert "KS223" not in codes(report)


# -- KW3xx: worker purity (synthetic) ----------------------------------------


class TestWorkerPurity:
    def test_worker_reading_mutated_global_fires_kw301(self, tmp_path):
        runner = """
            import multiprocessing

            _CACHE = {}

            def _seed(key):
                _CACHE[key] = 1

            def _worker(cfg):
                return _CACHE.get(cfg)

            def run_all(cfgs):
                ctx = multiprocessing.get_context("spawn")
                with ctx.Pool(2) as pool:
                    return pool.map(_worker, cfgs)
        """
        root = make_pkg(tmp_path, files={"bench/runner.py": runner})
        report = check_paths([root])
        kw301 = [d for d in report.diagnostics if d.code == "KW301"]
        assert kw301
        assert "'_CACHE'" in kw301[0].message

    def test_never_mutated_module_dict_is_a_constant(self, tmp_path):
        runner = """
            import multiprocessing

            _FACTORIES = {"default": 1}

            def _worker(cfg):
                return _FACTORIES[cfg]

            def run_all(cfgs):
                ctx = multiprocessing.get_context("spawn")
                with ctx.Pool(2) as pool:
                    return pool.map(_worker, cfgs)
        """
        root = make_pkg(tmp_path, files={"bench/runner.py": runner})
        report = check_paths([root])
        assert "KW301" not in codes(report), report.render_text()

    def test_lambda_dispatch_fires_kw302(self, tmp_path):
        runner = """
            import multiprocessing

            def run_all(cfgs):
                ctx = multiprocessing.get_context("spawn")
                with ctx.Pool(2) as pool:
                    return pool.map(lambda c: c, cfgs)
        """
        root = make_pkg(tmp_path, files={"bench/runner.py": runner})
        report = check_paths([root])
        assert "KW302" in codes(report)

    def test_fingerprint_root_is_checked_without_a_pool(self, tmp_path):
        runner = """
            _RESULTS = {}

            def _remember(key, value):
                _RESULTS[key] = value

            def run_experiment(cfg):
                return _RESULTS.get(cfg)
        """
        root = make_pkg(tmp_path, files={"bench/runner.py": runner})
        report = check_paths([root])
        assert "KW301" in codes(report)

    def test_transitive_callee_is_checked(self, tmp_path):
        runner = """
            import multiprocessing

            _STATE = []

            def _grow(x):
                _STATE.append(x)

            def _helper(cfg):
                return len(_STATE) + cfg

            def _worker(cfg):
                return _helper(cfg)

            def run_all(cfgs):
                ctx = multiprocessing.get_context("spawn")
                with ctx.Pool(2) as pool:
                    return pool.map(_worker, cfgs)
        """
        root = make_pkg(tmp_path, files={"bench/runner.py": runner})
        report = check_paths([root])
        kw301 = [d for d in report.diagnostics if d.code == "KW301"]
        assert any("_helper()" in d.message for d in kw301)

    def test_local_shadowing_is_clean(self, tmp_path):
        runner = """
            import multiprocessing

            _CACHE = {}

            def _seed(key):
                _CACHE[key] = 1

            def _worker(cfg):
                _CACHE = {}
                return _CACHE.get(cfg)

            def run_all(cfgs):
                ctx = multiprocessing.get_context("spawn")
                with ctx.Pool(2) as pool:
                    return pool.map(_worker, cfgs)
        """
        root = make_pkg(tmp_path, files={"bench/runner.py": runner})
        report = check_paths([root])
        assert "KW301" not in codes(report)


# -- fingerprint lifecycle (synthetic) ---------------------------------------


class TestFingerprintFlow:
    def test_missing_fingerprint_fires_ks211(self, tmp_path):
        root = make_pkg(tmp_path, files={"spe/streams.py": CLEAN_CHANNEL})
        report = check_paths([root])
        assert codes(report) == ["KS211"]
        assert "--update-fingerprint" in messages(report)

    def test_update_writes_a_stable_canonical_file(self, tmp_path):
        root = make_pkg(tmp_path, files={"spe/streams.py": CLEAN_CHANNEL})
        check_paths([root], update_fingerprint=True)
        path = root / FINGERPRINT_REL
        first = path.read_text()
        payload = json.loads(first)
        assert payload["schema_version"] == 1
        assert payload["contract"]["channel"] == ["pending", "pushed"]
        # regeneration is idempotent (sorted keys, fixed layout)
        check_paths([root], update_fingerprint=True)
        assert path.read_text() == first


# -- driver, exit codes, and CLI wiring --------------------------------------


class TestDriver:
    def test_missing_contract_source_is_a_usage_error(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        report, code = run_statecheck([str(tmp_path / "empty")])
        assert code == 2
        assert codes(report) == ["KS200"]

    def test_exit_codes_clean_and_findings(self, tmp_path, capsys):
        root = make_pkg(tmp_path, files={"spe/streams.py": CLEAN_CHANNEL})
        _, code = run_statecheck([str(root)], update_fingerprint=True)
        assert code == 0
        out = capsys.readouterr().out
        assert "state contract clean" in out
        # introduce a finding: uncaptured attribute
        (root / "spe" / "streams.py").write_text(
            CLEAN_CHANNEL + "\n    def mark(self):\n        self.dirty = 1\n"
        )
        _, code = run_statecheck([str(root)])
        assert code == 1

    def test_json_output_carries_categories_and_suppressions(self, tmp_path, capsys):
        channel = CLEAN_CHANNEL + (
            "\n    def mark(self):\n"
            "        self.dirty = True  # klink: transient[memo flag]\n"
        )
        root = make_pkg(tmp_path, files={"spe/streams.py": channel})
        check_paths([root], update_fingerprint=True)
        capsys.readouterr()
        _, code = run_statecheck([str(root)], output_format="json")
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["suppressed"] == {"KS201": 1}
        assert payload["suppressed_total"] == 1

    def test_rules_listing(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule_code in STATE_RULES:
            assert rule_code in out

    def test_module_main_on_shipped_tree(self, capsys):
        assert main([str(SRC)]) == 0
        assert "state contract clean" in capsys.readouterr().out

    def test_state_rules_registry(self):
        assert set(STATE_RULES) == {
            "KS200", "KS201", "KS202", "KS210", "KS211",
            "KS221", "KS222", "KS223", "KW301", "KW302",
        }

    def test_diagnostic_categories(self):
        from repro.analysis.report import rule_category

        assert rule_category("KS201") == "state"
        assert rule_category("KW301") == "worker-purity"
        assert rule_category("KL001") == "determinism"
        assert rule_category("KP101") == "plan"
        assert rule_category("X999") == "other"


class TestCLIIntegration:
    def test_repro_lint_state_flag_on_shipped_tree(self, capsys):
        from repro.analysis.lint import main as lint_main

        assert lint_main([str(SRC), "--state"]) == 0
        assert "(lint + state contract)" in capsys.readouterr().out

    def test_repro_bench_statecheck_subcommand(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["statecheck", str(SRC)]) == 0
        assert "state contract clean" in capsys.readouterr().out


# -- pragma parsing ----------------------------------------------------------


class TestPragmas:
    def test_transient_pragma_parsing(self):
        pragmas = parse_pragmas(
            "x = 1\n"
            "self.memo = {}  # klink: transient[derived cache]\n"
            "y = 2  # klink: allow[KS221, KW301]\n"
        )
        assert pragmas.is_transient(2)
        assert pragmas.transient_reason(2) == "derived cache"
        assert not pragmas.is_transient(1)
        assert pragmas.allows(3, "KS221")
        assert pragmas.allows(3, "KW301")
        assert not pragmas.allows(3, "KS201")
        assert not pragmas.allows(2, "KS221")
