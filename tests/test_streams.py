"""Unit tests for inter-operator channels."""

import pytest

from repro.spe.events import EventBatch, LatencyMarker, Watermark
from repro.spe.streams import Channel


def batch(count=10, t0=0.0, t1=100.0, bpe=100):
    return EventBatch(count=count, t_start=t0, t_end=t1, bytes_per_event=bpe)


class TestFifoSemantics:
    def test_push_pop_preserves_order(self):
        ch = Channel()
        records = [batch(), Watermark(50.0), batch(count=5)]
        for i, r in enumerate(records):
            ch.push(r, now=float(i))
        popped = [ch.pop().record for _ in range(3)]
        assert popped == records

    def test_pop_empty_returns_none(self):
        assert Channel().pop() is None

    def test_peek_does_not_remove(self):
        ch = Channel()
        ch.push(batch(), 0.0)
        assert ch.peek() is not None
        assert len(ch) == 1

    def test_push_front_restores_head(self):
        ch = Channel()
        ch.push(batch(count=1), 0.0)
        ch.push(batch(count=2), 1.0)
        head = ch.pop()
        ch.push_front(head.record, head.enqueued_at)
        assert ch.pop().record.count == 1


class TestAccounting:
    def test_queued_events_tracks_batches(self):
        ch = Channel()
        ch.push(batch(count=10), 0.0)
        ch.push(batch(count=5), 0.0)
        assert ch.queued_events == 15

    def test_queued_bytes_tracks_batches(self):
        ch = Channel()
        ch.push(batch(count=10, bpe=50), 0.0)
        assert ch.queued_bytes == 500

    def test_control_records_occupy_no_event_accounting(self):
        ch = Channel()
        ch.push(Watermark(0.0), 0.0)
        ch.push(LatencyMarker(created_at=0.0), 0.0)
        assert ch.queued_events == 0
        assert ch.queued_bytes == 0
        assert len(ch) == 2

    def test_pop_releases_accounting(self):
        ch = Channel()
        ch.push(batch(count=10), 0.0)
        ch.pop()
        assert ch.queued_events == 0
        assert ch.queued_bytes == 0

    def test_clear_resets_everything(self):
        ch = Channel()
        ch.push(batch(), 0.0)
        ch.clear()
        assert len(ch) == 0
        assert ch.queued_events == 0


class TestIntrospection:
    def test_head_arrival(self):
        ch = Channel()
        assert ch.head_arrival is None
        ch.push(batch(), 17.0)
        assert ch.head_arrival == 17.0

    def test_oldest_event_arrival_skips_watermarks(self):
        ch = Channel()
        ch.push(Watermark(0.0), 5.0)
        ch.push(batch(), 9.0)
        assert ch.oldest_event_arrival() == 9.0

    def test_oldest_event_arrival_counts_markers(self):
        ch = Channel()
        ch.push(LatencyMarker(created_at=0.0), 3.0)
        assert ch.oldest_event_arrival() == 3.0

    def test_has_watermark(self):
        ch = Channel()
        assert not ch.has_watermark()
        ch.push(Watermark(1.0), 0.0)
        assert ch.has_watermark()

    def test_bool_reflects_emptiness(self):
        ch = Channel()
        assert not ch
        ch.push(batch(), 0.0)
        assert ch


class TestTransferLatency:
    def test_latent_channel_holds_until_release(self):
        ch = Channel(latency_ms=100.0)
        ch.push(batch(count=4), now=0.0)
        assert len(ch) == 0
        assert ch.queued_events == 0
        assert ch.release(now=50.0) == 0
        assert ch.release(now=100.0) == 1
        assert ch.queued_events == 4

    def test_release_preserves_order(self):
        ch = Channel(latency_ms=10.0)
        ch.push(batch(count=1), 0.0)
        ch.push(Watermark(5.0), 1.0)
        ch.release(now=20.0)
        assert isinstance(ch.pop().record, EventBatch)
        assert isinstance(ch.pop().record, Watermark)

    def test_zero_latency_is_immediate(self):
        ch = Channel()
        ch.push(batch(), 0.0)
        assert len(ch) == 1

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            Channel(latency_ms=-1.0)
