"""Tests for the in-run telemetry layer (repro.obs.timeseries): metric
primitives, the ring-buffered registry, the engine-facing sampler, and
the v2 trace round trip."""

import math

import pytest

from repro.core.klink import KlinkScheduler
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    TelemetryConfig,
    TelemetrySampler,
    TraceWriter,
    dumps_line,
    read_trace,
)
from repro.obs.schema import validate_series
from repro.obs.timeseries import labels_key, series_key
from repro.spe.engine import Engine
from tests.helpers import make_simple_query


class TestPrimitives:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.read() == 3.5

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_counter_set_total_cannot_decrease(self):
        c = Counter()
        c.set_total(10.0)
        with pytest.raises(ValueError):
            c.set_total(9.0)

    def test_gauge_is_none_until_set(self):
        g = Gauge()
        assert g.read() is None
        g.set(4)
        assert g.read() == 4.0

    def test_histogram_quantiles_interpolate(self):
        h = Histogram(bounds=(10.0, 20.0, 30.0))
        for v in (5.0, 15.0, 25.0, 25.0):
            h.observe(v)
        assert h.count == 4
        assert h.quantile(0) <= h.quantile(50) <= h.quantile(100)
        assert h.quantile(100) == pytest.approx(30.0)  # containing bucket bound

    def test_histogram_overflow_bucket_interpolates_to_max(self):
        h = Histogram(bounds=(10.0,))
        h.observe(15.0)
        h.observe(25.0)
        assert h.quantile(100) == pytest.approx(25.0)

    def test_histogram_empty_quantile_is_nan(self):
        assert math.isnan(Histogram().quantile(50))

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_histogram_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            Histogram().quantile(101)

    def test_labels_key_sorts_pairs(self):
        assert labels_key({"b": "2", "a": "1"}) == (("a", "1"), ("b", "2"))
        assert series_key("m", labels_key({"b": "2", "a": "1"})) == "m{a=1,b=2}"


class TestSeries:
    def test_ring_buffer_bounds_and_counts_drops(self):
        from collections import deque

        s = Series("m", (), "gauge", points=deque(maxlen=3))
        for i in range(5):
            s.append(float(i), float(i))
        assert len(s.points) == 3
        assert s.dropped == 2
        assert s.values() == [2.0, 3.0, 4.0]
        assert s.window(3.0) == [3.0, 4.0]

    def test_to_dict_key_order_is_fixed(self):
        from collections import deque

        s = Series("m", (("q", "x"),), "gauge", points=deque([(1.0, 2.0)]))
        row = s.to_dict(200.0)
        assert list(row) == [
            "name", "labels", "kind", "period_ms", "points", "dropped",
        ]
        validate_series(row)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g", {"a": "1"}) is reg.gauge("g", {"a": "1"})

    def test_label_order_is_canonicalized(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", {"a": "1", "b": "2"})
        b = reg.gauge("g", {"b": "2", "a": "1"})
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_unset_gauges_and_empty_histograms_skipped(self):
        reg = MetricsRegistry()
        reg.gauge("unset")
        reg.histogram("empty")
        reg.counter("c").inc()
        reg.sample(100.0)
        assert [s.name for s in reg.series()] == ["c"]

    def test_histogram_expands_to_derived_series(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(10.0)
        reg.sample(100.0)
        names = {s.name for s in reg.series()}
        assert names == {"lat_count", "lat_p50", "lat_p99"}

    def test_series_sorted_regardless_of_registration_order(self):
        def build(order):
            reg = MetricsRegistry()
            for name, labels in order:
                reg.gauge(name, labels).set(1.0)
            reg.sample(0.0)
            return [dumps_line(r) for r in reg.to_rows()]

        forward = [("b", None), ("a", {"q": "2"}), ("a", {"q": "1"})]
        assert build(forward) == build(list(reversed(forward)))

    def test_matching_filters_by_labels(self):
        reg = MetricsRegistry()
        reg.gauge("q", {"query": "a"}).set(1.0)
        reg.gauge("q", {"query": "b"}).set(2.0)
        reg.sample(0.0)
        assert len(reg.matching("q")) == 2
        hits = reg.matching("q", (("query", "a"),))
        assert [s.key for s in hits] == ["q{query=a}"]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MetricsRegistry(period_ms=0.0)
        with pytest.raises(ValueError):
            MetricsRegistry(max_samples=0)


class TestTelemetryConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period_ms": 0.0},
            {"max_samples": 0},
            {"deadline_slo_ms": 0.0},
            {"latency_window": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TelemetryConfig(**kwargs)


def run_sampled(*, seed=1, duration=6_000.0, n_queries=2, config=None,
                rules=(), delay_ms=0.0):
    queries = [
        make_simple_query(f"q{i}", rate_eps=500.0, seed=seed + i,
                          delay_ms=delay_ms)
        for i in range(n_queries)
    ]
    sampler = TelemetrySampler(config or TelemetryConfig(), rules=rules)
    engine = Engine(queries, KlinkScheduler(), cores=4, cycle_ms=100.0,
                    seed=seed, telemetry=sampler)
    metrics = engine.run(duration)
    return sampler, metrics


class TestSamplerOnEngine:
    def test_standard_signal_set_recorded(self):
        sampler, _ = run_sampled()
        names = {s.name for s in sampler.registry.series()}
        for expected in (
            "memory_utilization", "memory_bytes", "events_processed",
            "cpu_ms", "memory_mode_active", "queue_depth",
            "watermark_lag_ms", "latency_ms_p99", "op_queue_depth",
            "op_cpu_ms",
        ):
            assert expected in names, expected

    def test_sample_cadence_follows_virtual_clock(self):
        config = TelemetryConfig(period_ms=500.0)
        sampler, metrics = run_sampled(duration=6_000.0, config=config)
        # 100 ms cycles, 500 ms period: one sample every 5th cycle.
        assert sampler.samples_taken == metrics.cycles // 5
        times = [t for t, _ in sampler.registry.get_series("cpu_ms").points]
        assert times == [500.0 * (i + 1) for i in range(len(times))]

    def test_per_operator_series_can_be_disabled(self):
        sampler, _ = run_sampled(config=TelemetryConfig(per_operator=False))
        names = {s.name for s in sampler.registry.series()}
        assert "op_queue_depth" not in names
        assert "queue_depth" in names

    def test_run_metrics_populated(self):
        sampler, metrics = run_sampled()
        assert metrics.deadline_misses == sampler.deadline_misses
        assert math.isfinite(metrics.watermark_lag_mean_ms)
        assert metrics.watermark_lag_max_ms >= metrics.watermark_lag_mean_ms
        summary = metrics.summary()
        assert summary["deadline_misses"] == metrics.deadline_misses
        assert summary["max_watermark_lag_ms"] == metrics.watermark_lag_max_ms

    def test_tight_slo_counts_every_delivery_as_miss(self):
        config = TelemetryConfig(deadline_slo_ms=1e-6)
        sampler, metrics = run_sampled(config=config, delay_ms=50.0)
        assert len(metrics.swm_latencies) > 0
        assert metrics.deadline_misses == len(metrics.swm_latencies)

    def test_seeded_reruns_are_byte_identical(self):
        def rows(delay_ms):
            sampler, _ = run_sampled(seed=7, delay_ms=delay_ms)
            return "\n".join(dumps_line(r) for r in sampler.series_rows())

        first = rows(0.0)
        assert first and first == rows(0.0)
        assert first != rows(200.0)  # different config, different series

    def test_finalize_is_idempotent(self):
        sampler, metrics = run_sampled()
        misses = metrics.deadline_misses
        sampler.deadline_misses += 99  # must not leak through a second call
        sampler.finalize(metrics, 99_999.0)
        assert metrics.deadline_misses == misses

    def test_series_rows_validate_against_schema(self):
        sampler, _ = run_sampled()
        rows = sampler.series_rows()
        assert rows
        for row in rows:
            validate_series(row)


class TestTraceV2RoundTrip:
    def test_series_and_alerts_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(str(path), meta={"workload": "ysb"})
        writer.finalize(
            series=[{"name": "q", "labels": {}, "kind": "gauge",
                     "period_ms": 200.0, "points": [[200.0, 1.0]],
                     "dropped": 0}],
            alerts=[{"rule": "r", "series": "q", "kind": "threshold",
                     "start": 200.0, "end": 400.0, "value": 2.0}],
            summary={"cycles": 1},
        )
        trace = read_trace(str(path))
        assert trace.schema_version == 3
        assert trace.series[0]["name"] == "q"
        assert trace.alerts[0]["rule"] == "r"

    def test_v1_trace_still_loads(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        path.write_text(
            '{"type":"meta","schema_version":1,"workload":"ysb"}\n'
            '{"type":"cycle","time":100.0,"cycle":0,"decisions":[]}\n'
            '{"type":"summary","mean_latency_ms":1.0}\n'
        )
        trace = read_trace(str(path))
        assert trace.schema_version == 1
        assert trace.series == [] and trace.alerts == []
        assert len(trace.cycles) == 1
