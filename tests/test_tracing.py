"""Unit tests for engine cycle tracing."""

import csv

import pytest

from repro.core.klink import KlinkScheduler
from repro.spe.engine import Engine
from repro.spe.memory import MemoryConfig
from repro.spe.tracing import CycleTracer
from tests.helpers import make_simple_query


def traced_run(duration=5_000.0, tracer=None, **engine_kw):
    # NB: `tracer or CycleTracer()` would discard an empty tracer, whose
    # __len__ makes it falsy.
    tracer = tracer if tracer is not None else CycleTracer()
    q = make_simple_query()
    engine = Engine([q], KlinkScheduler(), cores=4, cycle_ms=100.0,
                    tracer=tracer, **engine_kw)
    engine.run(duration)
    return tracer


class TestCollection:
    def test_one_row_per_cycle(self):
        tracer = traced_run(duration=5_000.0)
        assert len(tracer) == 50

    def test_rows_carry_clock_and_plan(self):
        tracer = traced_run()
        row = tracer.last()
        assert row.time == pytest.approx(5_000.0)
        assert row.plan_mode == "priority"
        assert row.head_queries == ["q0"]

    def test_ring_buffer_bounded(self):
        tracer = CycleTracer(max_rows=10)
        traced_run(duration=5_000.0, tracer=tracer)
        assert len(tracer) == 10
        assert tracer.rows[0].time == pytest.approx(4_100.0)

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            CycleTracer(max_rows=0)
        with pytest.raises(ValueError):
            CycleTracer(head=-1)

    def test_empty_tracer_last_is_none(self):
        assert CycleTracer().last() is None


class TestThrottledSpans:
    def test_no_spans_without_pressure(self):
        tracer = traced_run()
        assert tracer.throttled_spans() == []

    def test_backpressure_creates_spans(self):
        tracer = CycleTracer()
        q = make_simple_query(rate_eps=50_000.0, cost_ms=1.0)
        engine = Engine(
            [q], KlinkScheduler(), cores=4, cycle_ms=100.0, tracer=tracer,
            memory=MemoryConfig(capacity_bytes=50_000.0,
                                backpressure_threshold=0.5),
        )
        engine.run(10_000.0)
        spans = tracer.throttled_spans()
        assert spans
        for start, end in spans:
            assert start <= end


class TestEviction:
    """Regression (ISSUE satellite 3): rows past max_rows must evict
    oldest-first, and to_csv must round-trip exactly the retained rows."""

    def test_eviction_is_oldest_first(self):
        tracer = CycleTracer(max_rows=7)
        traced_run(duration=5_000.0, tracer=tracer)  # 50 cycles offered
        assert len(tracer) == 7
        times = [row.time for row in tracer.rows]
        # Exactly the newest 7 cycles, still in chronological order.
        assert times == [4_400.0 + 100.0 * i for i in range(7)]
        assert times == sorted(times)

    def test_single_row_buffer_keeps_newest(self):
        tracer = CycleTracer(max_rows=1)
        traced_run(duration=3_000.0, tracer=tracer)
        assert len(tracer) == 1
        assert tracer.last().time == pytest.approx(3_000.0)

    def test_csv_round_trips_retained_rows(self, tmp_path):
        tracer = CycleTracer(max_rows=5)
        traced_run(duration=5_000.0, tracer=tracer)
        path = tmp_path / "trace.csv"
        tracer.to_csv(str(path))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 5
        for csv_row, kept in zip(rows, tracer.rows):
            assert float(csv_row["time"]) == pytest.approx(kept.time)
            assert float(csv_row["memory_utilization"]) == pytest.approx(
                kept.memory_utilization, abs=1e-6
            )
            assert float(csv_row["cpu_used_ms"]) == pytest.approx(
                kept.cpu_used_ms, abs=1e-3
            )
            assert csv_row["plan_mode"] == kept.plan_mode
            assert bool(int(csv_row["backpressured"])) == kept.backpressured
            assert bool(int(csv_row["throttled"])) == kept.throttled
            assert csv_row["head_queries"].split("|") == kept.head_queries


class TestCsvExport:
    def test_csv_round_trip(self, tmp_path):
        tracer = traced_run()
        path = tmp_path / "trace.csv"
        tracer.to_csv(str(path))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(tracer)
        assert rows[0]["plan_mode"] == "priority"
        assert float(rows[-1]["time"]) == pytest.approx(5_000.0)


class TestStreamingAndJsonl:
    def test_stream_receives_every_row_despite_eviction(self):
        collected = []

        class Collector:
            def write(self, row):
                collected.append(row)

        tracer = CycleTracer(max_rows=3, stream=Collector())
        traced_run(duration=5_000.0, tracer=tracer)
        assert len(tracer) == 3  # deque stayed bounded
        assert len(collected) == 50  # the stream saw all 50 cycles
        assert [r["time"] for r in collected[:3]] != [
            row.time for row in tracer.rows
        ]

    def test_to_jsonl_round_trip(self, tmp_path):
        import json

        tracer = traced_run(duration=3_000.0)
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(str(path))
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(rows) == len(tracer)
        for parsed, kept in zip(rows, tracer.rows):
            assert parsed["time"] == kept.time
            assert parsed["plan_mode"] == kept.plan_mode
            assert parsed["head_queries"] == kept.head_queries
        assert list(rows[0]) == CycleTracer.FIELDS

    def test_jsonl_is_deterministic_across_seeded_runs(self, tmp_path):
        paths = []
        for i in range(2):
            tracer = traced_run(duration=3_000.0, seed=3)
            path = tmp_path / f"t{i}.jsonl"
            tracer.to_jsonl(str(path))
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]
