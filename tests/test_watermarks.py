"""Unit tests for mid-pipeline watermark generation (Sec. 2.2 case ii)."""

import math

import pytest

from repro.net.delays import ConstantDelay
from repro.spe.engine import Engine
from repro.spe.events import EventBatch, Watermark
from repro.spe.operators import SinkOperator, WindowedAggregate
from repro.spe.query import Query, SourceBinding, SourceSpec
from repro.spe.watermarks import (
    BoundedOutOfOrderness,
    PunctuatedWatermarks,
    WatermarkGeneratorOperator,
)
from repro.spe.windows import TumblingEventTimeWindows
from repro.core.baselines import DefaultScheduler


def batch(count=10, t0=0.0, t1=100.0):
    return EventBatch(count=count, t_start=t0, t_end=t1)


class TestBoundedOutOfOrderness:
    def test_no_watermark_before_data(self):
        s = BoundedOutOfOrderness(bound_ms=100.0)
        assert s.on_idle(now=1000.0) is None

    def test_watermark_trails_max_event_time(self):
        s = BoundedOutOfOrderness(bound_ms=100.0, period_ms=200.0)
        ts = s.on_batch(batch(t0=0, t1=500), now=600.0)
        assert ts == 400.0

    def test_periodic_emission_rate_limited(self):
        s = BoundedOutOfOrderness(bound_ms=0.0, period_ms=200.0)
        assert s.on_batch(batch(t1=100), now=0.0) == 100.0
        assert s.on_batch(batch(t0=100, t1=150), now=50.0) is None  # too soon
        assert s.on_batch(batch(t0=150, t1=300), now=250.0) == 300.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BoundedOutOfOrderness(bound_ms=-1.0)
        with pytest.raises(ValueError):
            BoundedOutOfOrderness(bound_ms=0.0, period_ms=0.0)


class TestPunctuated:
    def test_emits_on_every_batch(self):
        s = PunctuatedWatermarks(bound_ms=50.0)
        assert s.on_batch(batch(t1=100), now=0.0) == 50.0
        assert s.on_batch(batch(t0=100, t1=200), now=0.0) == 150.0

    def test_max_event_time_never_regresses(self):
        s = PunctuatedWatermarks(bound_ms=0.0)
        s.on_batch(batch(t1=500), now=0.0)
        assert s.on_batch(batch(t0=0, t1=100), now=0.0) == 500.0


class TestGeneratorOperator:
    def make(self, strategy=None):
        gen = WatermarkGeneratorOperator(
            "wmgen", strategy or PunctuatedWatermarks(bound_ms=0.0)
        )
        sink = SinkOperator("s")
        gen.connect(sink)
        return gen, sink

    def test_forwards_data_and_injects_watermark(self):
        gen, sink = self.make()
        gen.inputs[0].push(batch(count=5, t1=100), 0.0)
        gen.step(1e9, 0.0)
        records = [e.record for e in list(sink.inputs[0])]
        assert isinstance(records[0], EventBatch)
        assert isinstance(records[1], Watermark)
        assert records[1].timestamp == 100.0

    def test_watermarks_monotone(self):
        gen, sink = self.make()
        gen.inputs[0].push(batch(t1=500), 0.0)
        gen.inputs[0].push(batch(t0=0, t1=100), 0.0)  # older data
        gen.step(1e9, 0.0)
        wms = [
            e.record.timestamp
            for e in list(sink.inputs[0])
            if isinstance(e.record, Watermark)
        ]
        assert wms == [500.0]
        assert gen.watermarks_emitted == 1

    def test_absorbs_upstream_watermarks(self):
        gen, sink = self.make(BoundedOutOfOrderness(0.0, period_ms=1.0))
        gen.inputs[0].push(Watermark(1e9), 0.0)
        gen.step(1e9, 0.0)
        wms = [
            e.record for e in list(sink.inputs[0])
            if isinstance(e.record, Watermark)
        ]
        assert wms == []  # nothing observed yet -> nothing re-generated

    def test_notifies_progress_tracker(self):
        from repro.spe.query import StreamProgress

        progress = StreamProgress(
            TumblingEventTimeWindows(100.0), watermark_period_ms=100.0
        )
        gen, _ = self.make()
        gen.attach_progress(progress)
        gen.inputs[0].push(batch(t1=150), 0.0)
        gen.step(1e9, now=200.0)
        assert progress.last_watermark_ts == 150.0
        assert progress.epoch_index == 1  # swept the [0,100) deadline


class TestEndToEndMidPipelineGeneration:
    def test_windows_fire_without_source_watermarks(self):
        model = ConstantDelay(50.0)
        spec = SourceSpec(
            name="src",
            rate_eps=1000.0,
            watermark_period_ms=500.0,
            lateness_ms=model.bound,
            delay_model=model,
            emit_watermarks=False,  # case (ii): pipeline generates them
        )
        gen = WatermarkGeneratorOperator(
            "gen", BoundedOutOfOrderness(bound_ms=100.0, period_ms=200.0)
        )
        window = WindowedAggregate(
            "w", TumblingEventTimeWindows(1000.0), 0.01,
            output_events_per_pane=5, key_by="key",
        )
        sink = SinkOperator("snk")
        gen.connect(window)
        window.connect(sink)
        binding = SourceBinding(spec, gen)
        query = Query("q", [binding], [gen, window, sink], sink)
        gen.attach_progress(binding.progress)

        engine = Engine([query], DefaultScheduler(), cores=4, cycle_ms=100.0)
        metrics = engine.run(10_000.0)
        assert gen.watermarks_emitted > 0
        assert len(metrics.swm_latencies) >= 5

    def test_source_watermarks_suppressed(self):
        model = ConstantDelay(0.0)
        spec = SourceSpec(
            name="src", rate_eps=100.0, watermark_period_ms=500.0,
            lateness_ms=0.0, delay_model=model, emit_watermarks=False,
        )
        from repro.spe.operators import MapOperator

        m = MapOperator("m", 0.001)
        sink = SinkOperator("snk")
        m.connect(sink)
        query = Query("q", [SourceBinding(spec, m)], [m, sink], sink)
        engine = Engine([query], DefaultScheduler(), cores=2, cycle_ms=100.0)
        engine.run(5_000.0)
        assert m.stats.watermarks_seen == 0
