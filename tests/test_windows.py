"""Unit tests for window assigners and deadline arithmetic."""

import math

import pytest

from repro.spe.windows import (
    CountWindows,
    Pane,
    SlidingEventTimeWindows,
    TumblingEventTimeWindows,
)


class TestPane:
    def test_deadline_is_end(self):
        assert Pane(0.0, 3000.0).deadline == 3000.0


class TestTumblingAssignment:
    def test_event_lands_in_single_pane(self):
        w = TumblingEventTimeWindows(1000.0)
        panes = w.assign(1500.0)
        assert panes == [Pane(1000.0, 2000.0)]

    def test_boundary_event_belongs_to_next_pane(self):
        w = TumblingEventTimeWindows(1000.0)
        assert w.assign(1000.0) == [Pane(1000.0, 2000.0)]

    def test_is_tumbling_flag(self):
        assert TumblingEventTimeWindows(1000.0).is_tumbling
        assert not SlidingEventTimeWindows(1000.0, 500.0).is_tumbling

    def test_offset_shifts_panes(self):
        w = TumblingEventTimeWindows(1000.0, offset=300.0)
        assert w.assign(1500.0) == [Pane(1300.0, 2300.0)]

    def test_offset_wraps_modulo_slide(self):
        w = TumblingEventTimeWindows(1000.0, offset=1300.0)
        assert w.offset == 300.0


class TestSlidingAssignment:
    def test_event_belongs_to_size_over_slide_panes(self):
        w = SlidingEventTimeWindows(1000.0, 250.0)
        panes = w.assign(1000.0)
        assert len(panes) == 4
        for pane in panes:
            assert pane.start <= 1000.0 < pane.end

    def test_panes_are_aligned_to_slide(self):
        w = SlidingEventTimeWindows(900.0, 300.0)
        for pane in w.assign(1000.0):
            assert pane.start % 300.0 == pytest.approx(0.0)

    def test_rejects_slide_larger_than_size(self):
        with pytest.raises(ValueError):
            SlidingEventTimeWindows(500.0, 1000.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            SlidingEventTimeWindows(0.0)
        with pytest.raises(ValueError):
            SlidingEventTimeWindows(100.0, 0.0)


class TestNextDeadline:
    def test_tumbling_next_deadline(self):
        w = TumblingEventTimeWindows(1000.0)
        assert w.next_deadline(0.0) == 1000.0
        assert w.next_deadline(999.9) == 1000.0
        assert w.next_deadline(1000.0) == 2000.0  # strictly greater

    def test_sliding_next_deadline_every_slide(self):
        w = SlidingEventTimeWindows(1000.0, 250.0)
        assert w.next_deadline(1000.0) == 1250.0
        assert w.next_deadline(1100.0) == 1250.0

    def test_offset_next_deadline(self):
        w = TumblingEventTimeWindows(1000.0, offset=300.0)
        assert w.next_deadline(0.0) == 300.0
        assert w.next_deadline(300.0) == 1300.0

    def test_deadline_sequence_is_strictly_increasing(self):
        w = SlidingEventTimeWindows(1500.0, 500.0, offset=123.0)
        t = 0.0
        for _ in range(20):
            nxt = w.next_deadline(t)
            assert nxt > t
            t = nxt


class TestAssignRange:
    def test_tumbling_mass_is_conserved(self):
        w = TumblingEventTimeWindows(1000.0)
        assignments = w.assign_range(0.0, 3000.0, 300.0)
        assert sum(c for _, c in assignments) == pytest.approx(300.0)

    def test_sliding_mass_is_duplicated_per_pane_membership(self):
        w = SlidingEventTimeWindows(1000.0, 500.0)  # each event in 2 panes
        assignments = w.assign_range(0.0, 2000.0, 100.0)
        assert sum(c for _, c in assignments) == pytest.approx(200.0)

    def test_uniform_split_across_panes(self):
        w = TumblingEventTimeWindows(1000.0)
        assignments = dict(
            (pane.start, c) for pane, c in w.assign_range(0.0, 2000.0, 100.0)
        )
        assert assignments[0.0] == pytest.approx(50.0)
        assert assignments[1000.0] == pytest.approx(50.0)

    def test_point_interval_assigns_whole_mass(self):
        w = TumblingEventTimeWindows(1000.0)
        assignments = w.assign_range(500.0, 500.0, 42.0)
        assert len(assignments) == 1
        pane, count = assignments[0]
        assert pane == Pane(0.0, 1000.0)
        assert count == 42.0

    def test_zero_count_returns_nothing(self):
        w = TumblingEventTimeWindows(1000.0)
        assert w.assign_range(0.0, 100.0, 0.0) == []

    def test_partial_overlap_proportional(self):
        w = TumblingEventTimeWindows(1000.0)
        assignments = dict(
            (pane.start, c) for pane, c in w.assign_range(750.0, 1250.0, 100.0)
        )
        assert assignments[0.0] == pytest.approx(50.0)
        assert assignments[1000.0] == pytest.approx(50.0)


class TestCountWindows:
    def test_no_time_deadline(self):
        w = CountWindows(100)
        assert w.next_deadline(0.0) == math.inf

    def test_time_assignment_rejected(self):
        w = CountWindows(100)
        with pytest.raises(TypeError):
            w.assign(0.0)
        with pytest.raises(TypeError):
            w.assign_range(0.0, 1.0, 1.0)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            CountWindows(0)
