"""Unit tests for window assigners and deadline arithmetic."""

import math

import pytest

from repro.spe.windows import (
    CountWindows,
    Pane,
    SlidingEventTimeWindows,
    TumblingEventTimeWindows,
)


class TestPane:
    def test_deadline_is_end(self):
        assert Pane(0.0, 3000.0).deadline == 3000.0


class TestTumblingAssignment:
    def test_event_lands_in_single_pane(self):
        w = TumblingEventTimeWindows(1000.0)
        panes = w.assign(1500.0)
        assert panes == [Pane(1000.0, 2000.0)]

    def test_boundary_event_belongs_to_next_pane(self):
        w = TumblingEventTimeWindows(1000.0)
        assert w.assign(1000.0) == [Pane(1000.0, 2000.0)]

    def test_is_tumbling_flag(self):
        assert TumblingEventTimeWindows(1000.0).is_tumbling
        assert not SlidingEventTimeWindows(1000.0, 500.0).is_tumbling

    def test_offset_shifts_panes(self):
        w = TumblingEventTimeWindows(1000.0, offset=300.0)
        assert w.assign(1500.0) == [Pane(1300.0, 2300.0)]

    def test_offset_wraps_modulo_slide(self):
        w = TumblingEventTimeWindows(1000.0, offset=1300.0)
        assert w.offset == 300.0


class TestSlidingAssignment:
    def test_event_belongs_to_size_over_slide_panes(self):
        w = SlidingEventTimeWindows(1000.0, 250.0)
        panes = w.assign(1000.0)
        assert len(panes) == 4
        for pane in panes:
            assert pane.start <= 1000.0 < pane.end

    def test_panes_are_aligned_to_slide(self):
        w = SlidingEventTimeWindows(900.0, 300.0)
        for pane in w.assign(1000.0):
            assert pane.start % 300.0 == pytest.approx(0.0)

    def test_rejects_slide_larger_than_size(self):
        with pytest.raises(ValueError):
            SlidingEventTimeWindows(500.0, 1000.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            SlidingEventTimeWindows(0.0)
        with pytest.raises(ValueError):
            SlidingEventTimeWindows(100.0, 0.0)


class TestNextDeadline:
    def test_tumbling_next_deadline(self):
        w = TumblingEventTimeWindows(1000.0)
        assert w.next_deadline(0.0) == 1000.0
        assert w.next_deadline(999.9) == 1000.0
        assert w.next_deadline(1000.0) == 2000.0  # strictly greater

    def test_sliding_next_deadline_every_slide(self):
        w = SlidingEventTimeWindows(1000.0, 250.0)
        assert w.next_deadline(1000.0) == 1250.0
        assert w.next_deadline(1100.0) == 1250.0

    def test_offset_next_deadline(self):
        w = TumblingEventTimeWindows(1000.0, offset=300.0)
        assert w.next_deadline(0.0) == 300.0
        assert w.next_deadline(300.0) == 1300.0

    def test_deadline_sequence_is_strictly_increasing(self):
        w = SlidingEventTimeWindows(1500.0, 500.0, offset=123.0)
        t = 0.0
        for _ in range(20):
            nxt = w.next_deadline(t)
            assert nxt > t
            t = nxt


class TestAssignRange:
    def test_tumbling_mass_is_conserved(self):
        w = TumblingEventTimeWindows(1000.0)
        assignments = w.assign_range(0.0, 3000.0, 300.0)
        assert sum(c for _, c in assignments) == pytest.approx(300.0)

    def test_sliding_mass_is_duplicated_per_pane_membership(self):
        w = SlidingEventTimeWindows(1000.0, 500.0)  # each event in 2 panes
        assignments = w.assign_range(0.0, 2000.0, 100.0)
        assert sum(c for _, c in assignments) == pytest.approx(200.0)

    def test_uniform_split_across_panes(self):
        w = TumblingEventTimeWindows(1000.0)
        assignments = dict(
            (pane.start, c) for pane, c in w.assign_range(0.0, 2000.0, 100.0)
        )
        assert assignments[0.0] == pytest.approx(50.0)
        assert assignments[1000.0] == pytest.approx(50.0)

    def test_point_interval_assigns_whole_mass(self):
        w = TumblingEventTimeWindows(1000.0)
        assignments = w.assign_range(500.0, 500.0, 42.0)
        assert len(assignments) == 1
        pane, count = assignments[0]
        assert pane == Pane(0.0, 1000.0)
        assert count == 42.0

    def test_zero_count_returns_nothing(self):
        w = TumblingEventTimeWindows(1000.0)
        assert w.assign_range(0.0, 100.0, 0.0) == []

    def test_partial_overlap_proportional(self):
        w = TumblingEventTimeWindows(1000.0)
        assignments = dict(
            (pane.start, c) for pane, c in w.assign_range(750.0, 1250.0, 100.0)
        )
        assert assignments[0.0] == pytest.approx(50.0)
        assert assignments[1000.0] == pytest.approx(50.0)


class TestBoundaryRegressions:
    """Timestamps exactly on the pane grid ``offset + k * slide``.

    Regression tests for the float guards in ``next_deadline`` and
    ``assign_range``: a floor-derived grid index can land more than one
    step off at exact-boundary timestamps with a non-zero offset, and a
    single ``+= slide`` bump could not recover — skipping or duplicating
    a deadline/pane. The guards walk in BOTH directions until the grid
    brackets the timestamp.
    """

    # (size, slide, offset) combinations with float-unfriendly grids.
    GRIDS = [
        (1000.0, 1000.0, 0.0),
        (1000.0, 1000.0, 300.0),
        (1000.0, 250.0, 123.456),
        (1500.0, 500.0, 499.999999),
        (1000.0, 100.1, 0.3),
        (3600.0, 300.0, 0.1),
    ]

    @staticmethod
    def _oracle_next_deadline(w, t):
        # Independent oracle: scan grid ends around the timestamp and
        # take the smallest strictly greater one, using the same float
        # expression (offset + j*slide + size) as the grid definition.
        j0 = math.floor((t - w.size - w.offset) / w.slide)
        candidates = [
            w.offset + j * w.slide + w.size for j in range(j0 - 4, j0 + 8)
        ]
        return min(c for c in candidates if c > t)

    def test_next_deadline_at_exact_grid_points(self):
        for size, slide, offset in self.GRIDS:
            w = SlidingEventTimeWindows(size, slide, offset=offset)
            for k in list(range(0, 60)) + [600, 6000, 60000]:
                t = w.offset + k * w.slide  # exactly on the pane grid
                nd = w.next_deadline(t)
                assert nd > t, (size, slide, offset, k)
                assert nd == self._oracle_next_deadline(w, t), (
                    size, slide, offset, k,
                )

    def test_next_deadline_at_exact_pane_ends(self):
        # A timestamp that IS a pane end must yield the next end, never
        # itself ("strictly greater" contract).
        for size, slide, offset in self.GRIDS:
            w = SlidingEventTimeWindows(size, slide, offset=offset)
            for k in range(0, 40):
                end = w.offset + k * w.slide + w.size
                nd = w.next_deadline(end)
                assert nd > end
                assert nd == self._oracle_next_deadline(w, end)

    def test_assign_at_exact_grid_points_covers_timestamp(self):
        for size, slide, offset in self.GRIDS:
            w = SlidingEventTimeWindows(size, slide, offset=offset)
            memberships = round(size / slide)
            exact = (size / slide) == memberships
            for k in range(0, 40):
                t = w.offset + k * w.slide
                panes = w.assign(t)
                assert panes, (size, slide, offset, k)
                for pane in panes:
                    assert pane.start <= t < pane.end
                if exact:
                    # On a boundary with an integer size/slide ratio the
                    # event belongs to size/slide panes; when the grid
                    # values are not exactly representable, a pane end
                    # that rounds across the point may add or drop one
                    # measure-zero membership — but never more (the
                    # off-by-many skips the guards exist to prevent).
                    assert abs(len(panes) - memberships) <= 1, (
                        size, slide, offset, k,
                    )
                    if offset == 0.0 or slide == 1000.0:
                        # Exactly representable grids: no rounding slack.
                        assert len(panes) == memberships, (
                            size, slide, offset, k,
                        )

    def test_assign_range_leading_pane_not_dropped_at_boundary(self):
        # A batch starting exactly on the grid once lost its leading
        # pane's mass when the floor-derived start index rounded high.
        for size, slide, offset in self.GRIDS:
            w = SlidingEventTimeWindows(size, slide, offset=offset)
            memberships = size / slide
            if memberships != round(memberships):
                continue
            for k in range(0, 40):
                t0 = w.offset + k * w.slide
                t1 = t0 + 3.0 * slide
                total = sum(c for _, c in w.assign_range(t0, t1, 100.0))
                assert total == pytest.approx(100.0 * memberships, rel=1e-9)


class TestCountWindows:
    def test_no_time_deadline(self):
        w = CountWindows(100)
        assert w.next_deadline(0.0) == math.inf

    def test_time_assignment_rejected(self):
        w = CountWindows(100)
        with pytest.raises(TypeError):
            w.assign(0.0)
        with pytest.raises(TypeError):
            w.assign_range(0.0, 1.0, 1.0)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            CountWindows(0)
