"""Unit tests for the YSB/LRB/NYT workload builders."""

import pytest

from repro.spe.operators import WindowedAggregate, WindowedJoin
from repro.workloads import (
    WorkloadParams,
    build_queries,
    make_delay_model,
    workload_names,
)
from repro.workloads import lrb, nyt, ysb
from repro.net.delays import UniformDelay, ZipfDelay


class TestRegistry:
    def test_all_three_benchmarks_registered(self):
        assert set(workload_names()) == {"lrb", "nyt", "ysb"}

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            build_queries("tpch", 1)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            build_queries("ysb", 0)


class TestDelayModelFactory:
    def test_uniform(self):
        assert isinstance(make_delay_model("uniform", 0), UniformDelay)

    def test_zipf(self):
        assert isinstance(make_delay_model("zipf", 0), ZipfDelay)

    def test_case_insensitive(self):
        assert isinstance(make_delay_model("Zipf", 0), ZipfDelay)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_delay_model("pareto", 0)


class TestYsb:
    def test_pipeline_shape(self):
        q = ysb.build_query("y0")
        names = [type(op).__name__ for op in q.operators]
        assert names == [
            "FilterOperator",
            "MapOperator",
            "WindowedAggregate",
            "SinkOperator",
        ]

    def test_tumbling_three_second_window(self):
        q = ysb.build_query("y0")
        assigner = q.windowed_operators()[0].assigner
        assert assigner.size == 3000.0
        assert assigner.is_tumbling

    def test_native_rate(self):
        q = ysb.build_query("y0")
        assert q.bindings[0].spec.rate_eps == 10_000.0

    def test_rate_scale_applies(self):
        q = ysb.build_query("y0", WorkloadParams(rate_scale=0.5))
        assert q.bindings[0].spec.rate_eps == 5_000.0

    def test_campaign_cardinality(self):
        window = ysb.build_query("y0").windowed_operators()[0]
        assert window.output_events_per_pane == ysb.N_CAMPAIGNS


class TestLrb:
    def test_three_substreams_into_join(self):
        q = lrb.build_query("l0")
        assert len(q.bindings) == 3
        joins = q.join_operators()
        assert len(joins) == 1
        assert len(joins[0].inputs) == 3

    def test_sliding_join_window_5s_3s(self):
        join = lrb.build_query("l0").join_operators()[0]
        assert join.assigner.size == 5000.0
        assert join.assigner.slide == 3000.0

    def test_last_deadline_is_one_third(self):
        q = lrb.build_query("l0")
        aggs = [
            op for op in q.windowed_operators()
            if isinstance(op, WindowedAggregate)
        ]
        assert aggs[0].assigner.size == pytest.approx(1000.0)

    def test_substream_rate(self):
        q = lrb.build_query("l0")
        # 6.5K events per 2 s per sub-stream
        assert q.bindings[0].spec.rate_eps == pytest.approx(3250.0)


class TestNyt:
    def test_stateless_chain_then_sliding_window(self):
        q = nyt.build_query("n0")
        names = [type(op).__name__ for op in q.operators]
        assert names[-2:] == ["WindowedAggregate", "SinkOperator"]
        assert names.count("MapOperator") >= 3
        assert names.count("FilterOperator") >= 2

    def test_sliding_2s_1s(self):
        assigner = nyt.build_query("n0").windowed_operators()[0].assigner
        assert assigner.size == 2000.0
        assert assigner.slide == 1000.0

    def test_rate_7k(self):
        assert nyt.build_query("n0").bindings[0].spec.rate_eps == 7000.0


class TestBuildQueries:
    def test_builds_requested_count_with_unique_ids(self):
        queries = build_queries("ysb", 5, WorkloadParams(seed=0))
        assert len(queries) == 5
        assert len({q.query_id for q in queries}) == 5

    def test_deployments_staggered_within_window(self):
        params = WorkloadParams(seed=0, deploy_window_ms=20_000.0)
        queries = build_queries("ysb", 20, params)
        deploys = [q.deployed_at for q in queries]
        assert all(0.0 <= d <= 20_000.0 for d in deploys)
        assert len(set(deploys)) > 15  # actually randomized

    def test_seed_controls_layout(self):
        a = build_queries("ysb", 5, WorkloadParams(seed=1))
        b = build_queries("ysb", 5, WorkloadParams(seed=1))
        c = build_queries("ysb", 5, WorkloadParams(seed=2))
        assert [q.deployed_at for q in a] == [q.deployed_at for q in b]
        assert [q.deployed_at for q in a] != [q.deployed_at for q in c]

    def test_zipf_delay_selection(self):
        queries = build_queries("ysb", 2, WorkloadParams(delay="zipf"))
        assert isinstance(queries[0].bindings[0].spec.delay_model, ZipfDelay)

    def test_lateness_covers_delay_bound(self):
        for name in workload_names():
            for q in build_queries(name, 2, WorkloadParams(seed=3)):
                for b in q.bindings:
                    assert b.spec.lateness_ms >= b.spec.delay_model.bound
